//! **Perf baseline** — the three headline numbers behind the decoded-block
//! cache and the fleet flush pool, emitted as machine-readable JSON so CI
//! and future PRs can diff them:
//!
//! * `BENCH_ingest.json` — multi-series ingest throughput, 1 worker vs N
//!   workers, with a built-in determinism check (per-series scans and
//!   summed metrics must be identical for every worker count), plus an
//!   admission-control lane: a stall-inducing burst against a slow store
//!   (reporting `p99`/`p999` append latency, `stall_ticks` and the
//!   watermark-bounded `max_l0_depth`) and a light pass that must never
//!   stall.
//! * `BENCH_query.json` — repeated range queries over a compressed store,
//!   cache on vs cache off: wall time, disk bytes fetched, blocks decoded
//!   and the warm hit rate. A second, *cold* lane compares v2 whole-file
//!   reads with v3 ranged reads + pruning filters over the same data and
//!   reports `cold_query_bytes`, `cold_byte_reduction` and
//!   `tables_pruned`. A third, *agg* lane drives the windowed-aggregation
//!   workload through the v3 pushdown and through plain decode-and-fold,
//!   verifies bit-identical answers, and reports
//!   `agg_query_bytes_{pushdown,decode}`, `agg_byte_reduction` and
//!   `blocks_folded`.
//! * `BENCH_compaction.json` — an out-of-order merge-heavy ingest whose
//!   compaction reads run through the cache: write amplification, cache
//!   traffic and strict invalidation counts.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin perf_baseline -- \
//!     [--points N] [--series N] [--workers N] [--passes N] \
//!     [--cache POINTS] [--sstable N] [--seed S] [--out-dir DIR]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use seplsm_bench::{args, report};
use seplsm_core::{AdaptiveConfig, AdaptiveOpen, AnalyzerConfig};
use seplsm_dist::LogNormal;
use seplsm_lsm::sstable::{ByteSpan, RangeRead};
use seplsm_lsm::store::load_index;
use seplsm_lsm::{
    AdmissionStats, ArbiterConfig, BlockCache, EncodeOptions, EngineConfig,
    IoPacer, LsmEngine, MemStore, Metrics, MultiOpenOptions, MultiSeriesEngine,
    OpenOptions, SeriesId, SsTableId, SsTableMeta, TableStore,
    TieredOpenOptions, Watermarks,
};
use seplsm_types::{DataPoint, Error, Policy, Result, TimeRange};
use seplsm_workload::{AggregationWorkload, SyntheticWorkload};

/// A [`MemStore`] that counts the encoded bytes every read fetches, so the
/// cache lanes can report disk traffic. Whole-table reads (`get`,
/// `get_range`) charge the full encoded size — a span-less reader fetches
/// the whole file even when it decodes only some blocks — while byte-range
/// reads (`read_span`, the v3 path) charge exactly the bytes returned.
struct CountingStore {
    inner: MemStore,
    bytes_read: AtomicU64,
}

impl CountingStore {
    fn new(options: EncodeOptions) -> Self {
        Self {
            inner: MemStore::with_options(options),
            bytes_read: AtomicU64::new(0),
        }
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    fn charge(&self, id: SsTableId) {
        if let Ok(Some(raw)) = self.inner.read_raw(id) {
            self.bytes_read
                .fetch_add(raw.len() as u64, Ordering::Relaxed);
        }
    }
}

impl TableStore for CountingStore {
    fn put(&self, points: &[DataPoint]) -> Result<(SsTableMeta, usize)> {
        self.inner.put(points)
    }

    fn get(&self, id: SsTableId) -> Result<Vec<DataPoint>> {
        self.charge(id);
        self.inner.get(id)
    }

    fn get_range(&self, id: SsTableId, range: TimeRange) -> Result<RangeRead> {
        self.charge(id);
        self.inner.get_range(id, range)
    }

    fn delete(&self, id: SsTableId) -> Result<()> {
        self.inner.delete(id)
    }

    fn list(&self) -> Result<Vec<SsTableId>> {
        self.inner.list()
    }

    fn read_raw(&self, id: SsTableId) -> Result<Option<bytes::Bytes>> {
        let raw = self.inner.read_raw(id)?;
        if let Some(bytes) = &raw {
            self.bytes_read
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        }
        Ok(raw)
    }

    fn table_len(&self, id: SsTableId) -> Result<Option<u64>> {
        self.inner.table_len(id)
    }

    fn read_span(
        &self,
        id: SsTableId,
        span: ByteSpan,
    ) -> Result<Option<bytes::Bytes>> {
        let got = self.inner.read_span(id, span)?;
        if let Some(bytes) = &got {
            self.bytes_read
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        }
        Ok(got)
    }

    fn may_contain(
        &self,
        id: SsTableId,
        range: TimeRange,
    ) -> Result<Option<bool>> {
        // Route the metadata loads through `self` so the footer/index/filter
        // bytes a pruning decision costs show up in the byte counter too.
        match load_index(self, id)? {
            Some((index, _)) => Ok(Some(index.may_contain(range))),
            None => Ok(None),
        }
    }
}

/// A [`MemStore`] whose `put` sleeps for a fixed interval: a deterministic
/// stand-in for a saturated disk, letting the stall lane drive the tiered
/// engine's L0 above its watermarks without depending on machine speed.
struct SlowStore {
    inner: MemStore,
    put_delay: Duration,
}

impl SlowStore {
    fn new(put_delay: Duration) -> Self {
        Self {
            inner: MemStore::new(),
            put_delay,
        }
    }
}

impl TableStore for SlowStore {
    fn put(&self, points: &[DataPoint]) -> Result<(SsTableMeta, usize)> {
        std::thread::sleep(self.put_delay);
        self.inner.put(points)
    }

    fn get(&self, id: SsTableId) -> Result<Vec<DataPoint>> {
        self.inner.get(id)
    }

    fn get_range(&self, id: SsTableId, range: TimeRange) -> Result<RangeRead> {
        self.inner.get_range(id, range)
    }

    fn delete(&self, id: SsTableId) -> Result<()> {
        self.inner.delete(id)
    }

    fn list(&self) -> Result<Vec<SsTableId>> {
        self.inner.list()
    }

    fn read_raw(&self, id: SsTableId) -> Result<Option<bytes::Bytes>> {
        self.inner.read_raw(id)
    }

    fn table_len(&self, id: SsTableId) -> Result<Option<u64>> {
        self.inner.table_len(id)
    }

    fn read_span(
        &self,
        id: SsTableId,
        span: ByteSpan,
    ) -> Result<Option<bytes::Bytes>> {
        self.inner.read_span(id, span)
    }

    fn may_contain(
        &self,
        id: SsTableId,
        range: TimeRange,
    ) -> Result<Option<bool>> {
        self.inner.may_contain(id, range)
    }
}

fn dataset(points: usize, seed: u64) -> Vec<DataPoint> {
    SyntheticWorkload::new(50, LogNormal::new(4.0, 1.5), points, seed)
        .generate()
}

/// Lane 1: fleet ingest, 1 worker vs `workers`. Buffers are sized so the
/// flush work lands in `flush_all`, where the pool can spread it; the lane
/// fails outright if worker count changes any observable result.
fn ingest_lane(
    per_series: usize,
    series: u32,
    workers: usize,
    seed: u64,
) -> Result<serde_json::Value> {
    let run = |w: usize| -> Result<(f64, MultiSeriesEngine)> {
        // One slot of headroom: a buffer of exactly `per_series` would
        // seal (and flush) on the final append, on the caller thread,
        // leaving nothing for the pooled flush under test.
        let mut m = MultiOpenOptions::new(
            EngineConfig::new(Policy::conventional(per_series + 1))
                .with_sstable_points(512),
        )
        .workers(w)
        .open()?;
        for s in 0..series {
            for p in dataset(per_series, seed + u64::from(s)) {
                m.append(SeriesId(s), p)?;
            }
        }
        let t = Instant::now();
        m.flush_all()?;
        Ok((t.elapsed().as_secs_f64(), m))
    };

    let (seq_secs, seq) = run(1)?;
    let (par_secs, par) = run(workers)?;

    if par.combined_metrics() != seq.combined_metrics() {
        return Err(Error::InvalidConfig(
            "worker pool changed the summed fleet metrics".into(),
        ));
    }
    for id in seq.series_ids() {
        let a = seq.engine(id).map(|e| e.scan_all()).transpose()?;
        let b = par.engine(id).map(|e| e.scan_all()).transpose()?;
        if a != b {
            return Err(Error::InvalidConfig(format!(
                "worker pool changed the contents of {id}"
            )));
        }
    }

    let total = u64::from(series) * per_series as u64;
    let speedup = seq_secs / par_secs.max(1e-9);
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "ingest: {total} points over {series} series — flush {seq_secs:.3}s \
         (1 worker) vs {par_secs:.3}s ({workers} workers), {speedup:.2}x \
         on {cores} core(s)"
    );
    Ok(serde_json::json!({
        "points": total,
        "series": series,
        "workers": workers,
        "available_parallelism": cores,
        "flush_secs_1_worker": seq_secs,
        "flush_secs_n_workers": par_secs,
        "points_per_sec_1_worker": total as f64 / seq_secs.max(1e-9),
        "points_per_sec_n_workers": total as f64 / par_secs.max(1e-9),
        "speedup": speedup,
        "deterministic": true,
        "write_amplification": seq.metrics().write_amplification(),
    }))
}

/// Lane 1c: multi-tenant skew. A fleet shares one arbiter-managed memory
/// budget; one series takes heavy, badly-delayed traffic while its
/// neighbours trickle. The lane proves the arbiter grew the hot series
/// past every cold one (`hot_series_capacity > cold_series_capacity`) and
/// that the adaptive controller retuned the hot series online against its
/// grown slice (`retunes > 0`) — both re-asserted by CI from the JSON.
fn skew_lane(seed: u64) -> Result<serde_json::Value> {
    let cold_series = 7u32;
    let hot = SeriesId(0);
    let mut fleet = MultiOpenOptions::new(
        EngineConfig::new(Policy::conventional(64)).with_sstable_points(64),
    )
    .arbiter(
        ArbiterConfig::new(1024)
            .with_floor(16)
            .with_rebalance_every(256),
    )
    .adaptive(AdaptiveConfig::new().with_analyzer(AnalyzerConfig {
        window: 512,
        min_samples: 256,
        check_every: 128,
        ks_alpha: 0.01,
    }))?;

    // Cold neighbours: a short burst of clean points each.
    for s in 1..=cold_series {
        let pts = SyntheticWorkload::new(
            50,
            LogNormal::new(1.0, 0.3),
            64,
            seed + u64::from(s),
        )
        .generate();
        for p in pts {
            fleet.append(SeriesId(s), p)?;
        }
    }
    // Hot tenant: an order of magnitude more points, chaotically delayed,
    // so the arbiter grows it and the tuner must re-fit its policy online.
    let hot_pts =
        SyntheticWorkload::new(50, LogNormal::new(6.0, 2.0), 6_000, seed)
            .generate();
    for p in &hot_pts {
        fleet.append(hot, *p)?;
    }

    let engine = fleet.engine();
    let hot_cap = engine.series_capacity(hot).ok_or_else(|| {
        Error::InvalidConfig("hot series missing from the arbiter".into())
    })?;
    let cold_cap = (1..=cold_series)
        .filter_map(|s| engine.series_capacity(SeriesId(s)))
        .max()
        .ok_or_else(|| {
            Error::InvalidConfig("cold series missing from the arbiter".into())
        })?;
    let stats = engine.arbiter_stats().ok_or_else(|| {
        Error::InvalidConfig("arbiter stats unavailable".into())
    })?;
    let retunes = engine.retunes();
    if hot_cap <= cold_cap {
        return Err(Error::InvalidConfig(format!(
            "arbiter failed to favour the hot series: hot {hot_cap} vs \
             cold {cold_cap}"
        )));
    }
    if retunes == 0 {
        return Err(Error::InvalidConfig(
            "no online retune happened under skew".into(),
        ));
    }
    println!(
        "skew: hot capacity {hot_cap} vs cold max {cold_cap} after {} \
         rebalances; {retunes} online retune(s), {} points held for cache",
        stats.rounds, stats.cache_share
    );
    Ok(serde_json::json!({
        "hot_series_capacity": hot_cap,
        "cold_series_capacity": cold_cap,
        "rebalances": stats.rounds,
        "retunes": retunes,
        "arbiter_cache_share": stats.cache_share,
        "arbiter_resizes": stats.resizes,
    }))
}

/// Lane 1b: admission control under pressure. A *burst* pass appends into
/// a tiered engine whose store sleeps on every table write and whose
/// watermarks are tight, forcing delayed appends and real write stalls; a
/// *light* pass uses a fast store and headroom watermarks and must never
/// stall. Both passes report per-append tail latencies (`p99`/`p999`) plus
/// the admission counters; the burst pass additionally proves the stop
/// watermark bounded the L0 depth.
fn stall_lane(points: usize, seed: u64) -> Result<serde_json::Value> {
    fn percentile(sorted_nanos: &[u64], q: f64) -> f64 {
        if sorted_nanos.is_empty() {
            return 0.0;
        }
        let idx = ((sorted_nanos.len() - 1) as f64 * q).round() as usize;
        sorted_nanos[idx] as f64 / 1_000.0
    }

    let run = |store: Arc<dyn TableStore>,
               watermarks: Watermarks,
               pacer: IoPacer|
     -> Result<(Vec<u64>, Metrics, AdmissionStats)> {
        let mut engine = TieredOpenOptions::new(
            EngineConfig::new(Policy::conventional(64)).with_sstable_points(64),
        )
        .store(store)
        .admission(watermarks)
        .pacer(pacer)
        .open()?;
        let mut lat = Vec::with_capacity(points);
        for p in dataset(points, seed) {
            let t = Instant::now();
            engine.append(p)?;
            lat.push(t.elapsed().as_nanos() as u64);
        }
        engine.quiesce()?;
        let metrics = engine.metrics();
        let stats = engine.admission_stats();
        engine.finish()?;
        lat.sort_unstable();
        Ok((lat, metrics, stats))
    };

    let tight = Watermarks::new(2, 4)?;
    let (burst_lat, burst_m, burst_a) = run(
        Arc::new(SlowStore::new(Duration::from_micros(300))),
        tight,
        IoPacer::new(1024, 4096)?,
    )?;
    if burst_m.stall_ticks == 0 || burst_a.stalls == 0 {
        return Err(Error::InvalidConfig(
            "burst pass failed to induce a write stall".into(),
        ));
    }
    if burst_a.max_depth > tight.stop() {
        return Err(Error::InvalidConfig(format!(
            "stop watermark breached: depth {} > {}",
            burst_a.max_depth,
            tight.stop()
        )));
    }
    if burst_a.currently_stalled {
        return Err(Error::InvalidConfig(
            "burst pass ended inside a stall".into(),
        ));
    }

    let headroom = Watermarks::new(1 << 20, 1 << 21)?;
    let (light_lat, light_m, light_a) =
        run(Arc::new(MemStore::new()), headroom, IoPacer::default())?;
    if light_m.stall_ticks != 0 {
        return Err(Error::InvalidConfig(
            "light pass must never stall under headroom watermarks".into(),
        ));
    }

    let burst_p99 = percentile(&burst_lat, 0.99);
    let burst_p999 = percentile(&burst_lat, 0.999);
    println!(
        "stall: burst p99 {burst_p99:.1}us p999 {burst_p999:.1}us — \
         {} stalls, {} stall ticks, {} delayed, max depth {}/{} — \
         light p99 {:.1}us, 0 stall ticks",
        burst_a.stalls,
        burst_m.stall_ticks,
        burst_m.delayed_appends,
        burst_a.max_depth,
        tight.stop(),
        percentile(&light_lat, 0.99),
    );
    Ok(serde_json::json!({
        // Headline keys (CI contract): burst-pass tail latency + stalls.
        "p99": burst_p99,
        "p999": burst_p999,
        "stall_ticks": burst_m.stall_ticks,
        "max_l0_depth": burst_a.max_depth,
        "stop_watermark": tight.stop(),
        "burst": {
            "points": points,
            "slowdown_watermark": tight.slowdown(),
            "stop_watermark": tight.stop(),
            "p50_us": percentile(&burst_lat, 0.50),
            "p99_us": burst_p99,
            "p999_us": burst_p999,
            "stalls": burst_a.stalls,
            "stall_ticks": burst_m.stall_ticks,
            "delayed_appends": burst_m.delayed_appends,
            "paced_ticks": burst_m.paced_ticks,
            "max_l0_depth": burst_a.max_depth,
        },
        "light": {
            "points": points,
            "p50_us": percentile(&light_lat, 0.50),
            "p99_us": percentile(&light_lat, 0.99),
            "p999_us": percentile(&light_lat, 0.999),
            "stalls": light_a.stalls,
            "stall_ticks": light_m.stall_ticks,
            "delayed_appends": light_m.delayed_appends,
            "max_l0_depth": light_a.max_depth,
        },
    }))
}

/// Lane 2: repeated range queries, cache on vs cache off, over identical
/// compressed stores. Reports wall time, disk bytes and decode counts for
/// the query phase only (ingest traffic is excluded).
fn query_lane(
    points: usize,
    passes: usize,
    cache_points: usize,
    seed: u64,
) -> Result<serde_json::Value> {
    let build = |cache: Option<Arc<BlockCache>>| -> Result<(
        Arc<CountingStore>,
        LsmEngine,
        Option<Arc<BlockCache>>,
    )> {
        let store = Arc::new(CountingStore::new(EncodeOptions::compressed()));
        let mut options = OpenOptions::new(
            EngineConfig::new(Policy::conventional(256))
                .with_sstable_points(512)
                .with_block_reads(),
        )
        .store(Arc::clone(&store) as Arc<dyn TableStore>);
        if let Some(cache) = &cache {
            options = options.cache(Arc::clone(cache));
        }
        let mut engine = options.open()?;
        for p in dataset(points, seed) {
            engine.append(p)?;
        }
        engine.flush_all()?;
        Ok((store, engine, cache))
    };

    let span = 50 * points as i64;
    let ranges: Vec<TimeRange> = (0..8)
        .map(|i| {
            let start = i * span / 8;
            TimeRange::new(start, start + span / 10)
        })
        .collect();

    let measure = |cache: Option<Arc<BlockCache>>| -> Result<(
        f64,
        u64,
        u64,
        Option<Arc<BlockCache>>,
    )> {
        let (store, engine, cache) = build(cache)?;
        let ingest_bytes = store.bytes_read();
        let t = Instant::now();
        let mut blocks = 0u64;
        for _ in 0..passes {
            for range in &ranges {
                let (_, stats) = engine.query(*range)?;
                blocks += stats.blocks_read;
            }
        }
        let secs = t.elapsed().as_secs_f64();
        Ok((secs, store.bytes_read() - ingest_bytes, blocks, cache))
    };

    let (off_secs, off_bytes, off_blocks, _) = measure(None)?;
    let (on_secs, on_bytes, on_blocks, cache) =
        measure(Some(BlockCache::with_capacity(cache_points)))?;
    let stats = cache.as_deref().map(BlockCache::stats).unwrap_or_default();

    let reduction = off_bytes as f64 / (on_bytes.max(1)) as f64;
    println!(
        "query: {passes} passes x {} ranges — cache off {off_bytes} B \
         ({off_secs:.3}s), cache on {on_bytes} B ({on_secs:.3}s), \
         {reduction:.1}x fewer disk bytes, hit rate {:.1}%",
        ranges.len(),
        stats.hit_rate() * 100.0
    );
    Ok(serde_json::json!({
        "points": points,
        "passes": passes,
        "ranges": ranges.len(),
        "cache_capacity_points": cache_points,
        "cache_off": {
            "secs": off_secs,
            "disk_bytes": off_bytes,
            "blocks_decoded": off_blocks,
        },
        "cache_on": {
            "secs": on_secs,
            "disk_bytes": on_bytes,
            "blocks_decoded": on_blocks,
            "hit_rate": stats.hit_rate(),
        },
        "disk_byte_reduction": reduction,
        "speedup": off_secs / on_secs.max(1e-9),
    }))
}

/// Lane 2b: one *cold* query pass over the same data stored as v2
/// (compressed blocks, whole-file reads) and as v3 (pruned layout, ranged
/// reads + filter block). The cache is emptied after ingest, so every
/// table visit pays its true disk cost: v2 fetches whole files even to
/// decide a table is irrelevant, v3 fetches a few hundred metadata bytes
/// and prunes most tables without touching a data block.
fn cold_lane(
    points: usize,
    cache_points: usize,
    seed: u64,
) -> Result<serde_json::Value> {
    let run = |options: EncodeOptions| -> Result<(u64, u64)> {
        let store = Arc::new(CountingStore::new(options));
        let cache = BlockCache::with_capacity(cache_points);
        let mut engine = OpenOptions::new(
            EngineConfig::new(Policy::conventional(256))
                .with_sstable_points(256)
                .with_block_reads(),
        )
        .store(Arc::clone(&store) as Arc<dyn TableStore>)
        .cache(Arc::clone(&cache))
        .open()?;
        for p in dataset(points, seed) {
            engine.append(p)?;
        }
        engine.flush_all()?;
        // Drop whatever ingest-time compaction reads warmed: this lane
        // measures a genuinely cold query path.
        for id in store.list()? {
            cache.invalidate_table(id);
        }
        let baseline = store.bytes_read();
        let span = 50 * points as i64;
        let mut pruned = 0u64;
        // One narrow window plus point probes at offsets that fall between
        // generation times: v3 clears most tables on metadata alone.
        let (_, stats) =
            engine.query(TimeRange::new(span / 2, span / 2 + span / 64))?;
        pruned += stats.tables_pruned;
        for i in 0..16 {
            let at = i * span / 16 + 7;
            let (_, stats) = engine.query(TimeRange::new(at, at))?;
            pruned += stats.tables_pruned;
        }
        Ok((store.bytes_read() - baseline, pruned))
    };

    let (v2_bytes, _) = run(EncodeOptions::compressed())?;
    let (v3_bytes, pruned) = run(EncodeOptions::pruned())?;
    let reduction = v2_bytes as f64 / v3_bytes.max(1) as f64;
    println!(
        "cold query: v2 {v2_bytes} B whole-file vs v3 {v3_bytes} B ranged \
         ({reduction:.1}x fewer bytes), {pruned} tables pruned"
    );
    Ok(serde_json::json!({
        "cold_query_bytes": { "v2": v2_bytes, "v3": v3_bytes },
        "cold_byte_reduction": reduction,
        "tables_pruned": pruned,
    }))
}

/// Lane 2c: the windowed-aggregation mix over bursty out-of-order arrivals
/// ([`AggregationWorkload`]), answered twice over the same cold v3 store:
/// once through the pushdown (`aggregate`/`downsample`, folding index
/// pre-aggregates) and once by decoding every point via `query` and
/// folding by hand. The lane fails outright unless both ways produce
/// bit-identical aggregates; the JSON reports the bytes each way cost.
fn agg_lane(
    points: usize,
    cache_points: usize,
    seed: u64,
) -> Result<serde_json::Value> {
    let workload = AggregationWorkload::new(points, seed);
    let data = workload.generate();
    let (min_tg, max_tg) = data.iter().fold((i64::MAX, i64::MIN), |acc, p| {
        (acc.0.min(p.gen_time), acc.1.max(p.gen_time))
    });
    let queries = workload.queries(min_tg, max_tg);

    let store = Arc::new(CountingStore::new(EncodeOptions::pruned()));
    let cache = BlockCache::with_capacity(cache_points);
    let mut engine = OpenOptions::new(
        EngineConfig::new(Policy::conventional(256))
            .with_sstable_points(256)
            .with_block_reads(),
    )
    .store(Arc::clone(&store) as Arc<dyn TableStore>)
    .cache(Arc::clone(&cache))
    .open()?;
    for p in &data {
        engine.append(*p)?;
    }
    engine.flush_all()?;

    let go_cold = |store: &CountingStore| -> Result<u64> {
        for id in store.list()? {
            cache.invalidate_table(id);
        }
        Ok(store.bytes_read())
    };

    // Phase 1: pushdown.
    let baseline = go_cold(&store)?;
    let mut pushdown = Vec::with_capacity(queries.len());
    let mut folded = 0u64;
    let mut fallback = 0u64;
    for q in &queries {
        match q.bucket_width {
            Some(width) => {
                let (buckets, stats) = engine.downsample(q.range, width)?;
                folded += stats.blocks_folded;
                fallback += stats.agg_fallback_blocks;
                pushdown.push(buckets);
            }
            None => {
                let (agg, stats) = engine.aggregate(q.range)?;
                folded += stats.blocks_folded;
                fallback += stats.agg_fallback_blocks;
                pushdown.push(vec![(q.range.start, agg)]);
            }
        }
    }
    let pushdown_bytes = store.bytes_read() - baseline;

    // Phase 2: decode everything and fold by hand, equally cold.
    let baseline = go_cold(&store)?;
    for (q, got) in queries.iter().zip(&pushdown) {
        let (pts, _) = engine.query(q.range)?;
        let want: Vec<(i64, seplsm_lsm::Agg)> = match q.bucket_width {
            Some(width) => {
                let mut buckets =
                    std::collections::BTreeMap::<i64, seplsm_lsm::Agg>::new();
                for p in &pts {
                    buckets
                        .entry(p.gen_time.div_euclid(width) * width)
                        .or_default()
                        .merge_point(p.value);
                }
                buckets.into_iter().collect()
            }
            None => {
                let mut agg = seplsm_lsm::Agg::default();
                for p in &pts {
                    agg.merge_point(p.value);
                }
                vec![(q.range.start, agg)]
            }
        };
        let matches = got.len() == want.len()
            && got
                .iter()
                .zip(&want)
                .all(|(a, b)| a.0 == b.0 && a.1.bits_eq(&b.1));
        if !matches {
            return Err(Error::InvalidConfig(format!(
                "pushdown diverged from decode-and-fold on {:?}",
                q.range
            )));
        }
    }
    let decode_bytes = store.bytes_read() - baseline;

    let reduction = decode_bytes as f64 / pushdown_bytes.max(1) as f64;
    println!(
        "agg: {} queries ({} downsampled) — pushdown {pushdown_bytes} B vs \
         decode {decode_bytes} B ({reduction:.1}x fewer bytes), \
         {folded} blocks folded, {fallback} decoded",
        queries.len(),
        queries.iter().filter(|q| q.bucket_width.is_some()).count(),
    );
    Ok(serde_json::json!({
        "agg_queries": queries.len(),
        "agg_query_bytes_pushdown": pushdown_bytes,
        "agg_query_bytes_decode": decode_bytes,
        "agg_byte_reduction": reduction,
        "blocks_folded": folded,
        "agg_fallback_blocks": fallback,
        "agg_results_bit_identical": true,
    }))
}

/// Lane 3: a merge-heavy out-of-order ingest (small buffers, small tables)
/// with a trailing-window query every 1000 points — the monitoring-dashboard
/// shape. Queries and compaction reads share the cache, and each compaction
/// strictly invalidates the blocks of the tables it consumes.
fn compaction_lane(
    points: usize,
    cache_points: usize,
    seed: u64,
) -> Result<serde_json::Value> {
    let run = |cache: Option<Arc<BlockCache>>| -> Result<(f64, LsmEngine)> {
        let store = Arc::new(CountingStore::new(EncodeOptions::compressed()));
        let mut options = OpenOptions::new(
            EngineConfig::new(Policy::conventional(64))
                .with_sstable_points(64)
                .with_block_reads(),
        )
        .store(store as Arc<dyn TableStore>);
        if let Some(cache) = cache {
            options = options.cache(cache);
        }
        let mut engine = options.open()?;
        let t = Instant::now();
        for (i, p) in dataset(points, seed).into_iter().enumerate() {
            let at = p.gen_time;
            engine.append(p)?;
            if i % 1000 == 999 {
                engine.query(TimeRange::new(at - 5_000, at))?;
            }
        }
        engine.flush_all()?;
        Ok((t.elapsed().as_secs_f64(), engine))
    };

    let (plain_secs, plain) = run(None)?;
    let cache = BlockCache::with_capacity(cache_points);
    let (cached_secs, cached) = run(Some(Arc::clone(&cache)))?;

    if cached.scan_all()? != plain.scan_all()? {
        return Err(Error::InvalidConfig(
            "cache changed compaction results".into(),
        ));
    }
    let m = cached.metrics();
    let stats = cache.stats();
    println!(
        "compaction: {points} points, WA {:.3}, {} compactions — \
         {plain_secs:.3}s uncached vs {cached_secs:.3}s cached, \
         {} invalidated blocks, hit rate {:.1}%",
        m.write_amplification(),
        m.compactions,
        stats.invalidated_blocks,
        stats.hit_rate() * 100.0
    );
    Ok(serde_json::json!({
        "points": points,
        "write_amplification": m.write_amplification(),
        "compactions": m.compactions,
        "uncached_secs": plain_secs,
        "cached_secs": cached_secs,
        "speedup": plain_secs / cached_secs.max(1e-9),
        "cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate(),
            "evictions": stats.evictions,
            "invalidated_blocks": stats.invalidated_blocks,
        },
    }))
}

/// Folds `b`'s top-level fields into `a` (both must be JSON objects).
fn merge_objects(
    a: serde_json::Value,
    b: serde_json::Value,
) -> serde_json::Value {
    match (a, b) {
        (serde_json::Value::Object(mut a), serde_json::Value::Object(b)) => {
            a.extend(b);
            serde_json::Value::Object(a)
        }
        (a, _) => a,
    }
}

fn main() -> Result<()> {
    let points: usize = args::flag_or("points", 5_000);
    let series: u32 = args::flag_or("series", 8);
    let workers: usize = args::flag_or("workers", 4);
    let passes: usize = args::flag_or("passes", 8);
    let cache_points: usize = args::flag_or("cache", 64 * 1024);
    let seed: u64 = args::flag_or("seed", 1);
    let out_dir = args::flag("out-dir").unwrap_or_else(|| "results".into());

    report::banner("perf baseline: cache + fleet flush pool");
    let ingest = merge_objects(
        merge_objects(
            ingest_lane(points, series, workers, seed)?,
            stall_lane(points, seed)?,
        ),
        skew_lane(seed)?,
    );
    let query = merge_objects(
        merge_objects(
            query_lane(points, passes, cache_points, seed)?,
            cold_lane(points, cache_points, seed)?,
        ),
        agg_lane(points, cache_points, seed)?,
    );
    let compaction = compaction_lane(points, cache_points, seed)?;

    for (name, value) in [
        ("BENCH_ingest.json", &ingest),
        ("BENCH_query.json", &query),
        ("BENCH_compaction.json", &compaction),
    ] {
        report::maybe_write_json(Some(format!("{out_dir}/{name}")), value)
            .map_err(Error::Io)?;
    }
    Ok(())
}
