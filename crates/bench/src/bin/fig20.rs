//! **Fig. 20** — query latency on dataset H: (a) the recent-data workload,
//! (b) the historical workload, `π_c` vs `π_s(n̂*_seq)`, windows of 10 s and
//! 20 s (H is a 1 Hz series, so windows are seconds rather than the
//! milliseconds of Figs. 13/14).
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig20 -- [--points N] [--seed S] [--json out.json]
//! ```

use std::sync::Arc;

use seplsm_bench::{args, drive, report};
use seplsm_dist::Empirical;
use seplsm_lsm::DiskModel;
use seplsm_types::Policy;
use seplsm_workload::{HistoricalQueries, RecentQueries, VehicleWorkload};

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 120_000);
    let seed: u64 = args::flag_or("seed", 20);
    let n = 512usize;
    let sstable = 512usize;
    let windows_ms = [10_000i64, 20_000];
    let disk = DiskModel::hdd();

    let workload = VehicleWorkload::new(points, seed);
    let dataset = workload.generate();
    let delays: Vec<f64> = dataset.iter().map(|p| p.delay() as f64).collect();
    let rec_policy = drive::recommended_policy(
        Arc::new(Empirical::from_samples(&delays)),
        workload.delta_t as f64,
        n,
    )?;
    println!("recommended separation setting: {}", rec_policy.name());
    let sep_policy = match rec_policy {
        Policy::Separation { .. } => rec_policy,
        // The tuner may (correctly) prefer pi_c on H; Fig. 20 still compares
        // against the best separation split.
        Policy::Conventional { .. } => Policy::separation_even(n)?,
    };

    report::banner("Fig. 20(a): recent-data query latency on H (ns)");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for window in windows_ms {
        let q = RecentQueries::new(window, 500);
        let conv = drive::run_recent_queries(
            &dataset,
            Policy::conventional(n),
            sstable,
            q,
            &disk,
        )?;
        let sep =
            drive::run_recent_queries(&dataset, sep_policy, sstable, q, &disk)?;
        rows.push(vec![
            format!("{}s", window / 1000),
            format!("{:.3e}", conv.mean_latency_ns),
            format!("{:.3e}", sep.mean_latency_ns),
        ]);
        json.push(serde_json::json!({
            "workload": "recent",
            "window_ms": window,
            "pi_c_latency_ns": conv.mean_latency_ns,
            "pi_s_latency_ns": sep.mean_latency_ns,
        }));
    }
    report::print_table(&["window", "pi_c lat(ns)", "pi_s lat(ns)"], &rows);

    report::banner("Fig. 20(b): historical query latency on H (ns)");
    let mut rows = Vec::new();
    for window in windows_ms {
        let q = HistoricalQueries::new(window, 200, seed ^ window as u64);
        let conv = drive::run_historical_queries(
            &dataset,
            Policy::conventional(n),
            sstable,
            q,
            &disk,
        )?;
        let sep = drive::run_historical_queries(
            &dataset, sep_policy, sstable, q, &disk,
        )?;
        rows.push(vec![
            format!("{}s", window / 1000),
            format!("{:.3e}", conv.mean_latency_ns),
            format!("{:.3e}", sep.mean_latency_ns),
        ]);
        json.push(serde_json::json!({
            "workload": "historical",
            "window_ms": window,
            "pi_c_latency_ns": conv.mean_latency_ns,
            "pi_s_latency_ns": sep.mean_latency_ns,
        }));
    }
    report::print_table(&["window", "pi_c lat(ns)", "pi_s lat(ns)"], &rows);

    report::maybe_write_json(args::flag("json"), &serde_json::json!(json))
        .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
