//! **Fig. 8** — the delay profile of dataset S-9: the delay series summary
//! and its histogram, showing the skew the paper's WA argument relies on
//! ("some data points suffer much longer delays than others").
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig08 -- [--points N] [--seed S] [--json out.json]
//! ```

use seplsm_bench::{args, report};
use seplsm_dist::stats::{percentile_sorted, Histogram};
use seplsm_workload::{fraction_out_of_order, S9Workload};

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 30_000);
    let seed: u64 = args::flag_or("seed", 8);

    let workload = S9Workload::new(points, seed);
    let dataset = workload.generate();
    let mut delays: Vec<f64> =
        dataset.iter().map(|p| p.delay() as f64).collect();
    delays.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let ooo = fraction_out_of_order(&dataset);

    report::banner("Fig. 8: delays of dataset S-9 (ms)");
    report::print_table(
        &["statistic", "value"],
        &[
            vec!["points".into(), dataset.len().to_string()],
            vec![
                "median".into(),
                report::f1(percentile_sorted(&delays, 50.0)),
            ],
            vec!["p90".into(), report::f1(percentile_sorted(&delays, 90.0))],
            vec!["p99".into(), report::f1(percentile_sorted(&delays, 99.0))],
            vec!["max".into(), report::f1(*delays.last().expect("points"))],
            vec![
                "out-of-order %".into(),
                format!("{:.2}% (paper: 7.05%)", ooo * 100.0),
            ],
        ],
    );

    report::banner("Fig. 8 histogram (log-scale buckets)");
    let logs: Vec<f64> = delays.iter().map(|d| (d + 1.0).log10()).collect();
    let hist = Histogram::from_samples(&logs, 20);
    let mut rows = Vec::new();
    for (edge, count) in hist.bars() {
        let lo = 10f64.powf(edge) - 1.0;
        let hi = 10f64.powf(edge + hist.bin_width()) - 1.0;
        rows.push(vec![
            format!("{lo:.0}..{hi:.0}"),
            count.to_string(),
            "#".repeat(((count as f64).ln_1p() * 4.0) as usize),
        ]);
    }
    report::print_table(&["delay range (ms)", "count", ""], &rows);

    report::maybe_write_json(
        args::flag("json"),
        &serde_json::json!({
            "points": dataset.len(),
            "median_delay_ms": percentile_sorted(&delays, 50.0),
            "p99_delay_ms": percentile_sorted(&delays, 99.0),
            "out_of_order_fraction": ooo,
        }),
    )
    .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
