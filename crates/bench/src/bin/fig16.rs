//! **Fig. 16** — robustness to *non-independent* delays (dataset H):
//! (a) the autocorrelation function of H's delays with 95 % white-noise
//! bounds; (b) WA estimate vs real under `π_c` and `π_s(n̂*_seq)`.
//!
//! The paper's point: H violates the i.i.d.-delay assumption (strong ACF),
//! yet the approximate models still rank the policies correctly — here,
//! `π_c` wins.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig16 -- [--points N] [--seed S] [--budget B] [--json out.json]
//! ```

use seplsm_bench::{args, drive, report};
use seplsm_dist::stats::{autocorr_confidence, autocorrelation};
use seplsm_workload::VehicleWorkload;

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 200_000);
    let seed: u64 = args::flag_or("seed", 16);
    let budget: usize = args::flag_or("budget", 512);

    let workload = VehicleWorkload::new(points, seed);
    let dataset = workload.generate();
    let delays: Vec<f64> = dataset.iter().map(|p| p.delay() as f64).collect();

    report::banner("Fig. 16(a): autocorrelation of delays in dataset H");
    let acf = autocorrelation(&delays, 10);
    let bound = autocorr_confidence(delays.len());
    let mut rows = Vec::new();
    for (lag, &value) in acf.iter().enumerate() {
        rows.push(vec![
            lag.to_string(),
            report::f3(value),
            if lag > 0 && value.abs() > bound {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    report::print_table(&["lag", "acf", "significant"], &rows);
    println!("95% white-noise bound: +/-{bound:.4}");

    report::banner("Fig. 16(b): WA estimate vs real on dataset H");
    let result = drive::estimate_and_measure(&dataset, budget, 512)?;
    report::print_table(
        &["policy", "estimated", "real"],
        &[
            vec![
                "pi_c".into(),
                report::f3(result.rc_model),
                report::f3(result.rc_measured),
            ],
            vec![
                format!("pi_s(n_seq={})", result.n_seq_star),
                report::f3(result.rs_model),
                report::f3(result.rs_measured),
            ],
        ],
    );
    println!(
        "model picked the correct policy despite non-independent delays: {}",
        result.decision_correct()
    );

    report::maybe_write_json(
        args::flag("json"),
        &serde_json::json!({
            "acf": acf,
            "confidence_bound": bound,
            "pi_c": {"model": result.rc_model, "measured": result.rc_measured},
            "pi_s": {
                "n_seq": result.n_seq_star,
                "model": result.rs_model,
                "measured": result.rs_measured,
            },
            "decision_correct": result.decision_correct(),
        }),
    )
    .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
