//! **Fig. 11** — WA under `π_c` and `π_s` on the (simulated) real-world
//! dataset S-9: model estimate vs measured.
//!
//! The paper sets the memory budget to 8 points on S-9 (footnote 2: the
//! dataset is small, tiny buffers are needed to trigger merges at all) and
//! finds that the skewed straggler delays make `π_s` the winner.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig11 -- [--points N] [--seed S] [--budget B] [--json out.json]
//! ```

use seplsm_bench::{args, drive, report};
use seplsm_workload::S9Workload;

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 30_000);
    let seed: u64 = args::flag_or("seed", 9);
    let budget: usize = args::flag_or("budget", 8);

    let dataset = S9Workload::new(points, seed).generate();
    let ooo = seplsm_workload::fraction_out_of_order(&dataset);

    report::banner("Fig. 11: WA on dataset S-9 (estimate vs real)");
    println!(
        "dataset: {} points, {:.2}% out of order, budget n={budget}",
        dataset.len(),
        ooo * 100.0
    );
    let result = drive::estimate_and_measure(&dataset, budget, budget)?;
    report::print_table(
        &["policy", "estimated", "real"],
        &[
            vec![
                "pi_c".into(),
                report::f3(result.rc_model),
                report::f3(result.rc_measured),
            ],
            vec![
                format!("pi_s(n_seq={})", result.n_seq_star),
                report::f3(result.rs_model),
                report::f3(result.rs_measured),
            ],
        ],
    );
    println!(
        "estimated delta_t = {} ms; model picked the correct policy: {}",
        result.delta_t,
        result.decision_correct()
    );

    report::maybe_write_json(
        args::flag("json"),
        &serde_json::json!({
            "out_of_order_fraction": ooo,
            "delta_t": result.delta_t,
            "pi_c": {"model": result.rc_model, "measured": result.rc_measured},
            "pi_s": {
                "n_seq": result.n_seq_star,
                "model": result.rs_model,
                "measured": result.rs_measured,
            },
            "decision_correct": result.decision_correct(),
        }),
    )
    .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
