//! **Fig. 13** — query latency of the recent-data workload on M1–M12,
//! `π_c` vs `π_s` (recommended capacities), on the simulated HDD.
//!
//! The paper's finding: despite the lower read amplification of `π_s`
//! (Fig. 12), its smaller SSTables mean more files per query, and on an HDD
//! the extra seeks usually make recent-data queries *slower* under `π_s`.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig13 -- [--points N] [--seed S] [--json out.json]
//! ```

use std::sync::Arc;

use seplsm_bench::{args, drive, report};
use seplsm_lsm::DiskModel;
use seplsm_types::Policy;
use seplsm_workload::{RecentQueries, PAPER_DATASETS, PAPER_WINDOWS_MS};

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 60_000);
    let seed: u64 = args::flag_or("seed", 13);
    let n = 512usize;
    let sstable = 512usize;
    let every = 500u64;
    let disk = DiskModel::hdd();

    report::banner(
        "Fig. 13: recent-data query latency (ns, simulated HDD), M1-M12",
    );
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for ds in PAPER_DATASETS {
        let dataset = ds.workload(points, seed).generate();
        let rec = drive::recommended_policy(
            Arc::new(ds.distribution()),
            ds.delta_t as f64,
            n,
        )?;
        for window in PAPER_WINDOWS_MS {
            let q = RecentQueries::new(window, every);
            let conv = drive::run_recent_queries(
                &dataset,
                Policy::conventional(n),
                sstable,
                q,
                &disk,
            )?;
            let sep =
                drive::run_recent_queries(&dataset, rec, sstable, q, &disk)?;
            rows.push(vec![
                ds.name.to_string(),
                format!("{window}ms"),
                format!("{:.3e}", conv.mean_latency_ns),
                format!("{:.3e}", sep.mean_latency_ns),
                report::f1(conv.mean_tables_read),
                report::f1(sep.mean_tables_read),
            ]);
            json.push(serde_json::json!({
                "dataset": ds.name,
                "window_ms": window,
                "pi_c_latency_ns": conv.mean_latency_ns,
                "pi_s_latency_ns": sep.mean_latency_ns,
                "pi_c_tables": conv.mean_tables_read,
                "pi_s_tables": sep.mean_tables_read,
            }));
        }
    }
    report::print_table(
        &[
            "dataset",
            "window",
            "pi_c lat(ns)",
            "pi_s lat(ns)",
            "pi_c tbls",
            "pi_s tbls",
        ],
        &rows,
    );
    report::maybe_write_json(args::flag("json"), &serde_json::json!(json))
        .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
