//! **Table III** — writing throughput (points/ms) under `π_c` and
//! `π_s(½n)` on M1–M12, with compaction running in the background
//! (the production write path of §V-C).
//!
//! The paper's finding: throughput is essentially unaffected by the policy
//! because compaction never blocks ingestion.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin table03 -- [--points N] [--seed S] [--json out.json]
//! ```

use seplsm_bench::{args, drive, report};
use seplsm_types::Policy;
use seplsm_workload::PAPER_DATASETS;

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 200_000);
    let seed: u64 = args::flag_or("seed", 3);
    let n = 512usize;
    let sstable = 512usize;

    report::banner(
        "Table III: writing throughput (points/ms), background compaction",
    );
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for ds in PAPER_DATASETS {
        let dataset = ds.workload(points, seed).generate();
        let (tp_c, wa_c) = drive::measure_throughput(
            &dataset,
            Policy::conventional(n),
            sstable,
        )?;
        let (tp_s, wa_s) = drive::measure_throughput(
            &dataset,
            Policy::separation_even(n)?,
            sstable,
        )?;
        rows.push(vec![
            ds.name.to_string(),
            report::f1(tp_c),
            report::f1(tp_s),
            report::f3(tp_s / tp_c),
        ]);
        json.push(serde_json::json!({
            "dataset": ds.name,
            "pi_c_points_per_ms": tp_c,
            "pi_s_points_per_ms": tp_s,
            "pi_c_wa": wa_c,
            "pi_s_wa": wa_s,
        }));
    }
    report::print_table(
        &["dataset", "pi_c (pts/ms)", "pi_s (pts/ms)", "ratio"],
        &rows,
    );
    println!(
        "\n(absolute numbers depend on the host; the paper's claim is the \
         ratio staying near 1)"
    );
    report::maybe_write_json(args::flag("json"), &serde_json::json!(json))
        .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
