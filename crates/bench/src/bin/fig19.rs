//! **Fig. 19** — the delay profile of the vehicle dataset H: summary
//! statistics and the delay histogram, showing the systematic cluster near
//! the ≈5×10⁴ ms batch re-send period.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig19 -- [--points N] [--seed S] [--json out.json]
//! ```

use seplsm_bench::{args, report};
use seplsm_dist::stats::{percentile_sorted, Histogram};
use seplsm_workload::VehicleWorkload;

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 200_000);
    let seed: u64 = args::flag_or("seed", 19);

    let workload = VehicleWorkload::new(points, seed);
    let dataset = workload.generate();
    let mut delays: Vec<f64> =
        dataset.iter().map(|p| p.delay() as f64).collect();
    delays.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    // Out-of-order statistics per Definition 3 (running max of arrivals).
    let mut max_tg = i64::MIN;
    let mut ooo_delays = Vec::new();
    for p in &dataset {
        if p.gen_time < max_tg {
            ooo_delays.push(p.delay() as f64);
        } else {
            max_tg = p.gen_time;
        }
    }
    let ooo_fraction = ooo_delays.len() as f64 / dataset.len() as f64;
    let ooo_mean = seplsm_dist::stats::mean(&ooo_delays);

    report::banner("Fig. 19(a): delays of dataset H (ms)");
    report::print_table(
        &["statistic", "value"],
        &[
            vec!["points".into(), dataset.len().to_string()],
            vec![
                "median delay".into(),
                report::f1(percentile_sorted(&delays, 50.0)),
            ],
            vec![
                "p99 delay".into(),
                report::f1(percentile_sorted(&delays, 99.0)),
            ],
            vec![
                "max delay".into(),
                report::f1(*delays.last().expect("points")),
            ],
            vec![
                "out-of-order %".into(),
                format!("{:.4}%", ooo_fraction * 100.0),
            ],
            vec!["avg ooo delay (ms)".into(), report::f1(ooo_mean)],
        ],
    );

    report::banner("Fig. 19(b): delay histogram (log-scale buckets)");
    // Log-scale buckets expose both the prompt mass and the re-send cluster.
    let logs: Vec<f64> = delays.iter().map(|d| (d + 1.0).log10()).collect();
    let hist = Histogram::from_samples(&logs, 24);
    let mut rows = Vec::new();
    for (edge, count) in hist.bars() {
        let lo = 10f64.powf(edge) - 1.0;
        let hi = 10f64.powf(edge + hist.bin_width()) - 1.0;
        let bar = "#".repeat(((count as f64).ln_1p() * 4.0) as usize);
        rows.push(vec![format!("{lo:.0}..{hi:.0}"), count.to_string(), bar]);
    }
    report::print_table(&["delay range (ms)", "count", ""], &rows);

    report::maybe_write_json(
        args::flag("json"),
        &serde_json::json!({
            "points": dataset.len(),
            "median_delay_ms": percentile_sorted(&delays, 50.0),
            "p99_delay_ms": percentile_sorted(&delays, 99.0),
            "out_of_order_fraction": ooo_fraction,
            "mean_out_of_order_delay_ms": ooo_mean,
        }),
    )
    .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
