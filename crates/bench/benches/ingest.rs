//! Ingest-path benchmarks: points/s through the synchronous engine under
//! both policies, and through the background-compaction engine.

use criterion::{
    criterion_group, criterion_main, BatchSize, Criterion, Throughput,
};
use seplsm_dist::LogNormal;
use seplsm_lsm::{EngineConfig, LsmEngine, MemStore, TieredEngine};
use seplsm_types::{DataPoint, Policy};
use seplsm_workload::SyntheticWorkload;
use std::sync::Arc;

fn dataset(points: usize) -> Vec<DataPoint> {
    SyntheticWorkload::new(50, LogNormal::new(4.0, 1.5), points, 1).generate()
}

fn bench_ingest(c: &mut Criterion) {
    let points = dataset(20_000);
    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Elements(points.len() as u64));
    group.sample_size(10);

    group.bench_function("lsm/pi_c", |b| {
        b.iter_batched(
            || {
                LsmEngine::in_memory(EngineConfig::new(Policy::conventional(
                    512,
                )))
                .expect("engine")
            },
            |mut engine| {
                for p in &points {
                    engine.append(*p).expect("append");
                }
                engine
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("lsm/pi_s_half", |b| {
        b.iter_batched(
            || {
                LsmEngine::in_memory(EngineConfig::new(
                    Policy::separation_even(512).expect("policy"),
                ))
                .expect("engine")
            },
            |mut engine| {
                for p in &points {
                    engine.append(*p).expect("append");
                }
                engine
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("tiered/pi_c", |b| {
        b.iter_batched(
            || {
                TieredEngine::new(
                    EngineConfig::new(Policy::conventional(512)),
                    Arc::new(MemStore::new()),
                )
                .expect("engine")
            },
            |mut engine| {
                for p in &points {
                    engine.append(*p).expect("append");
                }
                engine.finish().expect("finish")
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
