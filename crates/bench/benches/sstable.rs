//! Micro-benchmarks of the SSTable wire format: encode / decode throughput
//! for the paper-default 512-point table.

use criterion::{
    black_box, criterion_group, criterion_main, Criterion, Throughput,
};
use seplsm_lsm::sstable::format;
use seplsm_types::DataPoint;

fn table_points(n: usize) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            DataPoint::with_delay(
                i as i64 * 50,
                (i as i64 * 37) % 991,
                i as f64 * 0.25,
            )
        })
        .collect()
}

fn bench_format(c: &mut Criterion) {
    let mut group = c.benchmark_group("sstable");
    for n in [512usize, 4096] {
        let points = table_points(n);
        let encoded = format::encode(&points).expect("encode");
        let compressed =
            format::encode_with(&points, &format::EncodeOptions::compressed())
                .expect("encode v2");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("encode_v1/{n}"), |b| {
            b.iter(|| format::encode(black_box(&points)).expect("encode"))
        });
        group.bench_function(format!("decode_v1/{n}"), |b| {
            b.iter(|| format::decode(black_box(&encoded)).expect("decode"))
        });
        group.bench_function(format!("encode_v2/{n}"), |b| {
            b.iter(|| {
                format::encode_with(
                    black_box(&points),
                    &format::EncodeOptions::compressed(),
                )
                .expect("encode v2")
            })
        });
        group.bench_function(format!("decode_v2/{n}"), |b| {
            b.iter(|| {
                format::decode(black_box(&compressed)).expect("decode v2")
            })
        });
        // Block-granular read of a narrow range out of a v2 table.
        let range = seplsm_types::TimeRange::new(50 * 64, 50 * 96);
        group.bench_function(format!("decode_range_v2/{n}"), |b| {
            b.iter(|| {
                format::decode_range(black_box(&compressed), range)
                    .expect("range read")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_format);
criterion_main!(benches);
