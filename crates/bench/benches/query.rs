//! Query-path benchmarks: range queries against a populated engine under
//! both policies (recent tail window and historical interior window).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seplsm_dist::LogNormal;
use seplsm_lsm::{EngineConfig, LsmEngine};
use seplsm_types::{Policy, TimeRange};
use seplsm_workload::SyntheticWorkload;

fn populated(policy: Policy) -> LsmEngine {
    let mut engine =
        LsmEngine::in_memory(EngineConfig::new(policy)).expect("engine");
    let points =
        SyntheticWorkload::new(50, LogNormal::new(5.0, 2.0), 50_000, 2)
            .generate();
    for p in &points {
        engine.append(*p).expect("append");
    }
    engine
}

fn bench_query(c: &mut Criterion) {
    let conventional = populated(Policy::conventional(512));
    let separation = populated(Policy::separation_even(512).expect("policy"));
    let max_gen = conventional.max_gen_time().expect("points");

    let recent = TimeRange::new(max_gen - 5_000, max_gen);
    let historical = TimeRange::new(max_gen / 2, max_gen / 2 + 5_000);

    let mut group = c.benchmark_group("query");
    group.bench_function("recent/pi_c", |b| {
        b.iter(|| black_box(conventional.query(recent).expect("query")))
    });
    group.bench_function("recent/pi_s", |b| {
        b.iter(|| black_box(separation.query(recent).expect("query")))
    });
    group.bench_function("historical/pi_c", |b| {
        b.iter(|| black_box(conventional.query(historical).expect("query")))
    });
    group.bench_function("historical/pi_s", |b| {
        b.iter(|| black_box(separation.query(historical).expect("query")))
    });
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
