//! Model-evaluation benchmarks: cold/warm ζ(n) and full Algorithm 1 runs.
//!
//! The tuner must be cheap enough to run online inside a database, so these
//! track the cost of a cold model build, a warm (cached) evaluation, and a
//! complete tuning decision at both online and exhaustive granularity.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seplsm_core::{tune, TunerOptions, WaModel, ZetaConfig, ZetaModel};
use seplsm_dist::{Empirical, LogNormal};

fn bench_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("model");
    group.sample_size(10);

    group.bench_function("zeta/cold_512", |b| {
        b.iter(|| {
            let model =
                ZetaModel::new(Arc::new(LogNormal::new(4.0, 1.5)), 50.0);
            black_box(model.zeta(512))
        })
    });

    let warm = ZetaModel::new(Arc::new(LogNormal::new(4.0, 1.5)), 50.0);
    warm.zeta(512);
    group.bench_function("zeta/warm_512", |b| {
        b.iter(|| black_box(warm.zeta(512)))
    });

    group.bench_function("tune/online_512", |b| {
        b.iter(|| {
            let model = WaModel::with_zeta_config(
                Arc::new(LogNormal::new(5.0, 2.0)),
                50.0,
                512,
                ZetaConfig::online(),
            );
            black_box(tune(&model, TunerOptions::online(512)).expect("tune"))
        })
    });

    group.bench_function("tune/exhaustive_128", |b| {
        b.iter(|| {
            let model =
                WaModel::new(Arc::new(LogNormal::new(5.0, 2.0)), 50.0, 128);
            black_box(tune(&model, TunerOptions::default()).expect("tune"))
        })
    });

    // The analyzer path evaluates the models on an *empirical* distribution.
    let samples: Vec<f64> = {
        use rand::SeedableRng;
        use seplsm_dist::DelayDistribution;
        let d = LogNormal::new(5.0, 2.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        (0..4096).map(|_| d.sample(&mut rng)).collect()
    };
    group.bench_function("tune/online_512_empirical", |b| {
        b.iter(|| {
            let model = WaModel::with_zeta_config(
                Arc::new(Empirical::from_samples(&samples)),
                50.0,
                512,
                ZetaConfig::online(),
            );
            black_box(tune(&model, TunerOptions::online(512)).expect("tune"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
