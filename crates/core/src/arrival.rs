//! The arrival-rate-ratio model `g(·)` (paper Eq. 1).
//!
//! Under `π_s`, in-order and out-of-order points accumulate in separate
//! MemTables, so the WA model needs the *ratio* of the two arrival streams:
//! for `n_seq` in-order points to arrive, how many out-of-order points
//! `g(n_seq)` arrive alongside?
//!
//! The paper's derivation: among `α` points collected after a flush, the
//! `i`-th arrival is in order with probability `F(ι_i)` where
//! `ι_i = t_a − LAST(R).t_g` grows by ≈`Δt` per arrival. The expected
//! in-order count is `x(α) = Σ_{i=1..α} F(i·Δt)` and the expected
//! out-of-order count is `g = α − x(α)` (Eq. 1). Solving `x(α) = n_seq`
//! for `α` (with fractional interpolation on the final step) gives
//! `g(n_seq) = α − n_seq`.

use std::sync::Arc;

use seplsm_dist::DelayDistribution;
use seplsm_types::{Error, Result};

/// Evaluator for `g(n_seq)`.
pub struct ArrivalRatioModel {
    dist: Arc<dyn DelayDistribution>,
    delta_t: f64,
    /// Abort if `α` exceeds this (pathologically heavy tails where almost
    /// every arrival is out of order).
    max_alpha: usize,
}

impl ArrivalRatioModel {
    /// Default cap on the solved-for `α`.
    pub const DEFAULT_MAX_ALPHA: usize = 50_000_000;

    /// Creates the model for the given delay law and generation interval.
    pub fn new(dist: Arc<dyn DelayDistribution>, delta_t: f64) -> Self {
        assert!(delta_t > 0.0, "delta_t must be positive");
        Self {
            dist,
            delta_t,
            max_alpha: Self::DEFAULT_MAX_ALPHA,
        }
    }

    /// Overrides the `α` cap.
    pub fn with_max_alpha(mut self, max_alpha: usize) -> Self {
        self.max_alpha = max_alpha;
        self
    }

    /// Expected number of out-of-order arrivals accompanying `n_seq`
    /// in-order arrivals.
    ///
    /// Returns 0 when delays never produce out-of-order points (e.g. a
    /// constant-zero delay law).
    ///
    /// # Errors
    /// [`Error::Model`] if the in-order stream is so thin that `α` exceeds
    /// the cap before `x(α)` reaches `n_seq`.
    pub fn g(&self, n_seq: f64) -> Result<f64> {
        assert!(n_seq > 0.0, "n_seq must be positive");
        let mut in_order = 0.0; // x(α)
        let mut alpha = 0usize;
        loop {
            alpha += 1;
            if alpha > self.max_alpha {
                return Err(Error::Model(format!(
                    "arrival-ratio model: alpha exceeded {} before reaching \
                     n_seq={n_seq} (dist {})",
                    self.max_alpha,
                    self.dist.label()
                )));
            }
            let p = self.dist.cdf(alpha as f64 * self.delta_t).clamp(0.0, 1.0);
            if in_order + p >= n_seq {
                // Interpolate the fractional final arrival.
                let need = n_seq - in_order;
                let alpha_frac = if p > 0.0 {
                    (alpha - 1) as f64 + need / p
                } else {
                    alpha as f64
                };
                return Ok((alpha_frac - n_seq).max(0.0));
            }
            in_order += p;
        }
    }

    /// Expected out-of-order count among `alpha` arrivals — the raw Eq. 1
    /// form `g = α − Σ F(ι_i)`.
    pub fn expected_out_of_order(&self, alpha: usize) -> f64 {
        let in_order: f64 = (1..=alpha)
            .map(|i| self.dist.cdf(i as f64 * self.delta_t).clamp(0.0, 1.0))
            .sum();
        (alpha as f64 - in_order).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seplsm_dist::{Constant, LogNormal, Uniform};

    #[test]
    fn zero_delay_has_no_out_of_order() {
        let m = ArrivalRatioModel::new(Arc::new(Constant::new(0.0)), 50.0);
        assert_eq!(m.g(100.0).expect("g"), 0.0);
        assert_eq!(m.expected_out_of_order(1000), 0.0);
    }

    #[test]
    fn uniform_delay_closed_form() {
        // Uniform[0, 100], Δt = 50: F(50) = 0.5, F(100) = 1, F(150+) = 1.
        // x(α) = 0.5 + 1 + 1 + … so g stabilises at a small constant.
        let m =
            ArrivalRatioModel::new(Arc::new(Uniform::new(0.0, 100.0)), 50.0);
        // For n_seq = 0.5: α = 1 exactly, g = 0.5.
        assert!((m.g(0.5).expect("g") - 0.5).abs() < 1e-9);
        // For large n_seq, only the first arrival is ever out of order in
        // expectation: g → 0.5.
        assert!((m.g(100.0).expect("g") - 0.5).abs() < 1e-9);
    }

    #[test]
    fn heavier_tail_increases_g() {
        let light =
            ArrivalRatioModel::new(Arc::new(LogNormal::new(4.0, 1.5)), 50.0);
        let heavy =
            ArrivalRatioModel::new(Arc::new(LogNormal::new(5.0, 2.0)), 50.0);
        let gl = light.g(256.0).expect("light");
        let gh = heavy.g(256.0).expect("heavy");
        assert!(gh > gl, "heavy {gh} <= light {gl}");
    }

    #[test]
    fn larger_interval_decreases_g() {
        let fast =
            ArrivalRatioModel::new(Arc::new(LogNormal::new(5.0, 2.0)), 10.0);
        let slow =
            ArrivalRatioModel::new(Arc::new(LogNormal::new(5.0, 2.0)), 50.0);
        assert!(fast.g(256.0).expect("fast") > slow.g(256.0).expect("slow"));
    }

    #[test]
    fn g_is_monotone_in_n_seq() {
        let m =
            ArrivalRatioModel::new(Arc::new(LogNormal::new(5.0, 2.0)), 50.0);
        let mut prev = 0.0;
        for n_seq in [1.0, 16.0, 64.0, 256.0, 448.0] {
            let g = m.g(n_seq).expect("g");
            assert!(g >= prev - 1e-9, "g({n_seq})={g} < {prev}");
            prev = g;
        }
    }

    #[test]
    fn eq1_consistency_between_forms() {
        // g(x(α)) should recover α − x(α).
        let m =
            ArrivalRatioModel::new(Arc::new(LogNormal::new(4.0, 1.75)), 50.0);
        let alpha = 300usize;
        let ooo = m.expected_out_of_order(alpha);
        let in_order = alpha as f64 - ooo;
        let g = m.g(in_order).expect("g");
        assert!((g - ooo).abs() < 1e-6, "g={g}, direct={ooo}");
    }

    #[test]
    fn pathological_distribution_hits_cap() {
        // Delays so long that F(i·Δt) ≈ 0 for any reachable i.
        let m = ArrivalRatioModel::new(Arc::new(Constant::new(1e15)), 50.0)
            .with_max_alpha(10_000);
        assert!(m.g(1.0).is_err());
    }
}
