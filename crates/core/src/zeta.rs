//! The subsequent-data-point model `ζ(n)` (paper Eq. 2).
//!
//! `ζ(n)` is the expected number of *subsequent data points* on disk when `n`
//! points are buffered in memory — the points a compaction must rewrite
//! (Definition 4). The paper derives
//!
//! ```text
//! ζ(n) = Σ_i { 1 − ∫₀^∞ f(x) · Π_{j=1..n} E[F(t̃_{i+j} + x)] dx }
//! ```
//!
//! where `f`/`F` are the delay PDF/CDF and `t̃_m` is the arrival-time gap
//! spanning `m` points. Following the paper's tractability assumption, the
//! gap is approximated by its mean `m·Δt` ([`GapModel::MeanGap`]); a
//! Monte-Carlo gap mode is provided for validation.
//!
//! # Evaluation strategy
//!
//! * The delay integral is computed by quantile substitution on a fixed
//!   Gauss–Legendre rule (see `seplsm_dist::quadrature`), so the same code
//!   handles lognormal and empirical delay laws.
//! * For each quadrature node `x`, the inner product over `j` becomes a
//!   window sum of `ln F(m·Δt + x)` over `m ∈ (i, i+n]`. Per-node prefix sums
//!   of `ln F` make each window O(1); the arrays grow lazily and *saturate*
//!   once `ln F` is numerically zero (`F ≥ 1 − τ`), so heavy-tailed laws do
//!   not force unbounded tables.
//! * The outer sum over `i` stops when terms drop below `eps_term`
//!   (`P(B_i)` is non-increasing in `i`).
//! * Results are memoized per integer `n`; fractional arguments (the
//!   `N_arrive` of the separation model) interpolate linearly.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use seplsm_dist::quadrature::{expectation_nodes, GaussLegendre};
use seplsm_dist::DelayDistribution;

/// How the arrival-time gap `t̃_m` in Eq. 2 is modelled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GapModel {
    /// `t̃_m = m·Δt` — the paper's tractable approximation (default).
    MeanGap,
    /// `E[F(t̃_m + x)]` estimated over `pairs` sampled delay differences
    /// (`t̃_m = m·Δt + d' − d''`), for validating the mean-gap shortcut.
    MonteCarlo {
        /// Number of sampled `(d', d'')` pairs.
        pairs: u32,
        /// RNG seed, for reproducibility.
        seed: u64,
    },
}

/// Tunable evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct ZetaConfig {
    /// Quadrature order for the delay integral.
    pub quadrature_order: usize,
    /// Stop the outer sum once a term falls below this.
    pub eps_term: f64,
    /// Hard cap on outer-sum terms (safety valve for pathological laws).
    pub max_terms: usize,
    /// Treat `ln F(u)` as zero once `1 − F(u) < saturation_eps`.
    pub saturation_eps: f64,
    /// Hard cap on per-node prefix-table length (memory valve).
    pub max_prefix_len: usize,
    /// Clamp `ζ(n)` arguments to this (ζ saturates for huge buffers; see
    /// module docs).
    pub max_n: usize,
    /// Gap model for `t̃_m`.
    pub gap: GapModel,
}

impl Default for ZetaConfig {
    fn default() -> Self {
        Self {
            quadrature_order: 64,
            eps_term: 1e-9,
            max_terms: 2_000_000,
            saturation_eps: 1e-6,
            max_prefix_len: 150_000,
            max_n: 1 << 20,
            gap: GapModel::MeanGap,
        }
    }
}

impl ZetaConfig {
    /// A cheaper configuration for online use inside the adaptive tuner:
    /// coarser quadrature and earlier truncation, accurate to the precision
    /// the policy decision needs.
    pub fn online() -> Self {
        Self {
            quadrature_order: 32,
            eps_term: 1e-6,
            max_terms: 200_000,
            saturation_eps: 1e-5,
            max_prefix_len: 60_000,
            max_n: 1 << 16,
            gap: GapModel::MeanGap,
        }
    }
}

/// Per-quadrature-node state: prefix sums of `ln F(m·Δt + x)`.
struct NodeState {
    /// Delay value `x = F⁻¹(q)` at this node.
    x: f64,
    /// Quadrature weight (sums to 1 across nodes).
    w: f64,
    /// `prefix[m] = Σ_{m'=1..m} ln F(m'·Δt + x)`; `prefix[0] = 0`.
    prefix: Vec<f64>,
    /// Once saturated, `prefix[m]` is constant for `m ≥ saturated_at`.
    saturated_at: Option<usize>,
}

impl NodeState {
    /// `S(m)` with saturation: constant beyond the table end.
    fn s(&self, m: usize) -> f64 {
        let last = self.prefix.len() - 1;
        self.prefix[m.min(last)]
    }
}

/// Memoizing evaluator for `ζ(n)`.
pub struct ZetaModel {
    dist: Arc<dyn DelayDistribution>,
    delta_t: f64,
    config: ZetaConfig,
    nodes: RefCell<Vec<NodeState>>,
    cache: RefCell<HashMap<usize, f64>>,
    /// Shared gap perturbations for the Monte-Carlo mode.
    gap_samples: Vec<f64>,
}

impl ZetaModel {
    /// Creates a model for the given delay law and generation interval `Δt`.
    pub fn new(dist: Arc<dyn DelayDistribution>, delta_t: f64) -> Self {
        Self::with_config(dist, delta_t, ZetaConfig::default())
    }

    /// Creates a model with explicit evaluation parameters.
    pub fn with_config(
        dist: Arc<dyn DelayDistribution>,
        delta_t: f64,
        config: ZetaConfig,
    ) -> Self {
        assert!(delta_t > 0.0, "delta_t must be positive");
        let rule = GaussLegendre::new(config.quadrature_order);
        let nodes = expectation_nodes(&rule, &dist)
            .into_iter()
            .map(|(x, w)| NodeState {
                x,
                w,
                prefix: vec![0.0],
                saturated_at: None,
            })
            .collect();
        let gap_samples = match config.gap {
            GapModel::MeanGap => Vec::new(),
            GapModel::MonteCarlo { pairs, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..pairs)
                    .map(|_| dist.sample(&mut rng) - dist.sample(&mut rng))
                    .collect()
            }
        };
        Self {
            dist,
            delta_t,
            config,
            nodes: RefCell::new(nodes),
            cache: RefCell::new(HashMap::new()),
            gap_samples,
        }
    }

    /// The generation interval `Δt`.
    pub fn delta_t(&self) -> f64 {
        self.delta_t
    }

    /// The delay distribution the model was built on.
    pub fn distribution(&self) -> &Arc<dyn DelayDistribution> {
        &self.dist
    }

    /// `ln E[F(m·Δt + x)]` for one `(m, x)` pair under the active gap model.
    fn ln_ef(&self, m: usize, x: f64) -> f64 {
        let base = m as f64 * self.delta_t + x;
        match self.config.gap {
            GapModel::MeanGap => self.dist.ln_cdf(base).max(-745.0),
            GapModel::MonteCarlo { .. } => {
                let mean: f64 = self
                    .gap_samples
                    .iter()
                    .map(|g| self.dist.cdf(base + g))
                    .sum::<f64>()
                    / self.gap_samples.len() as f64;
                mean.max(f64::MIN_POSITIVE).ln().max(-745.0)
            }
        }
    }

    /// Extends every node's prefix table to cover `S(upto)` (or saturation).
    fn ensure_prefix(&self, upto: usize) {
        let upto = upto.min(self.config.max_prefix_len);
        let mut nodes = self.nodes.borrow_mut();
        // Collect per-node extension work first to appease the borrow of
        // `self` inside `ln_ef`.
        for idx in 0..nodes.len() {
            let (x, start, already_saturated) = {
                let node = &nodes[idx];
                (node.x, node.prefix.len(), node.saturated_at.is_some())
            };
            if already_saturated || start > upto {
                continue;
            }
            let mut acc = nodes[idx].prefix.last().copied().unwrap_or(0.0);
            let mut extension = Vec::with_capacity(upto + 1 - start);
            let mut saturated_at = None;
            for m in start..=upto {
                let lf = self.ln_ef(m, x);
                if -lf < self.config.saturation_eps {
                    // ln F is numerically zero from here on.
                    saturated_at = Some(m);
                    extension.push(acc);
                    break;
                }
                acc += lf;
                extension.push(acc);
            }
            let node = &mut nodes[idx];
            node.prefix.extend(extension);
            node.saturated_at = saturated_at;
        }
    }

    /// `ζ(n)` for an integer buffer size.
    pub fn zeta(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let n = n.min(self.config.max_n);
        if let Some(&v) = self.cache.borrow().get(&n) {
            return v;
        }
        let v = self.compute(n);
        self.cache.borrow_mut().insert(n, v);
        v
    }

    /// `ζ(·)` at a real-valued argument (linear interpolation between the
    /// neighbouring integers) — used for the separation model's `N_arrive`.
    pub fn zeta_real(&self, n: f64) -> f64 {
        if !n.is_finite() || n <= 0.0 {
            return 0.0;
        }
        let lo = n.floor() as usize;
        let hi = n.ceil() as usize;
        if lo == hi {
            return self.zeta(lo);
        }
        let frac = n - lo as f64;
        self.zeta(lo) * (1.0 - frac) + self.zeta(hi) * frac
    }

    fn compute(&self, n: usize) -> f64 {
        // Grow prefix tables in chunks as the outer sum advances.
        let mut covered = n + 1024;
        self.ensure_prefix(covered);
        let mut total = 0.0;
        let mut i = 0usize;
        loop {
            if i + n > covered {
                covered = (i + n) * 2;
                self.ensure_prefix(covered);
            }
            let term = {
                let nodes = self.nodes.borrow();
                let mut integral = 0.0;
                for node in nodes.iter() {
                    integral += node.w * (node.s(i + n) - node.s(i)).exp();
                }
                1.0 - integral
            };
            // P(B_i) is non-increasing in i; stop once negligible.
            if term < self.config.eps_term || i >= self.config.max_terms {
                break;
            }
            total += term;
            i += 1;
        }
        total.max(0.0)
    }

    /// WA under the conventional policy: `r_c = ζ(n)/n + 1` (Eq. 3).
    pub fn wa_conventional(&self, n: usize) -> f64 {
        assert!(n > 0, "buffer capacity must be positive");
        self.zeta(n) / n as f64 + 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seplsm_dist::{Constant, LogNormal, Uniform};

    fn lognormal_model(mu: f64, sigma: f64, dt: f64) -> ZetaModel {
        ZetaModel::new(Arc::new(LogNormal::new(mu, sigma)), dt)
    }

    #[test]
    fn zeta_of_zero_delay_is_zero() {
        // Perfectly in-order arrivals: nothing on disk is ever subsequent.
        let m = ZetaModel::new(Arc::new(Constant::new(0.0)), 50.0);
        assert_eq!(m.zeta(1), 0.0);
        assert_eq!(m.zeta(512), 0.0);
        assert!((m.wa_conventional(512) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zeta_is_nonnegative_and_monotone_in_n() {
        let m = lognormal_model(4.0, 1.5, 50.0);
        let mut prev = 0.0;
        for n in [1usize, 8, 32, 128, 512] {
            let z = m.zeta(n);
            assert!(z >= prev - 1e-9, "zeta({n})={z} < zeta(prev)={prev}");
            prev = z;
        }
        assert!(
            prev > 0.0,
            "lognormal delays must produce subsequent points"
        );
    }

    #[test]
    fn heavier_tail_yields_larger_zeta() {
        let light = lognormal_model(4.0, 1.5, 50.0);
        let heavy = lognormal_model(4.0, 1.75, 50.0);
        for n in [32usize, 128, 512] {
            assert!(
                heavy.zeta(n) > light.zeta(n),
                "n={n}: heavy {} vs light {}",
                heavy.zeta(n),
                light.zeta(n)
            );
        }
    }

    #[test]
    fn larger_interval_reduces_disorder() {
        let fast = lognormal_model(5.0, 2.0, 10.0);
        let slow = lognormal_model(5.0, 2.0, 50.0);
        assert!(fast.zeta(128) > slow.zeta(128));
    }

    #[test]
    fn zeta_matches_brute_force_for_uniform_delays() {
        // Uniform delays on [0, 200], Δt = 50: only a short window of points
        // can be overtaken, so the direct double sum is tractable.
        let dist = Uniform::new(0.0, 200.0);
        let m = ZetaModel::new(Arc::new(dist), 50.0);
        let n = 8;
        // Brute force Eq. 2 with the same mean-gap assumption, dense grid.
        let dist = Uniform::new(0.0, 200.0);
        let grid = 20_000;
        let mut brute = 0.0;
        for i in 0..200usize {
            let mut integral = 0.0;
            for k in 0..grid {
                let x = 200.0 * (k as f64 + 0.5) / grid as f64;
                let mut prod = 1.0;
                for j in 1..=n {
                    prod *= dist.cdf(((i + j) as f64) * 50.0 + x);
                }
                integral += prod / grid as f64;
            }
            brute += 1.0 - integral;
        }
        let fast = m.zeta(n);
        assert!(
            (fast - brute).abs() < 0.01,
            "prefix-sum {fast} vs brute force {brute}"
        );
    }

    #[test]
    fn zeta_real_interpolates() {
        let m = lognormal_model(4.0, 1.5, 50.0);
        let lo = m.zeta(100);
        let hi = m.zeta(101);
        let mid = m.zeta_real(100.5);
        assert!((mid - (lo + hi) / 2.0).abs() < 1e-9);
        assert_eq!(m.zeta_real(0.0), 0.0);
        assert_eq!(m.zeta_real(-3.0), 0.0);
        assert_eq!(m.zeta_real(f64::INFINITY), 0.0);
    }

    #[test]
    fn cache_returns_identical_values() {
        let m = lognormal_model(5.0, 2.0, 50.0);
        let a = m.zeta(256);
        let b = m.zeta(256);
        assert_eq!(a, b);
    }

    #[test]
    fn monte_carlo_gap_agrees_roughly_with_mean_gap() {
        let dist = Arc::new(LogNormal::new(4.0, 1.5));
        let mean = ZetaModel::new(dist.clone(), 50.0);
        let mc = ZetaModel::with_config(
            dist,
            50.0,
            ZetaConfig {
                gap: GapModel::MonteCarlo {
                    pairs: 64,
                    seed: 42,
                },
                ..ZetaConfig::default()
            },
        );
        let a = mean.zeta(64);
        let b = mc.zeta(64);
        assert!(
            (a - b).abs() / a.max(1.0) < 0.5,
            "mean-gap {a} vs monte-carlo {b}"
        );
    }

    #[test]
    fn huge_n_is_clamped_not_divergent() {
        let m = ZetaModel::with_config(
            Arc::new(LogNormal::new(4.0, 1.5)),
            50.0,
            ZetaConfig {
                max_n: 4096,
                ..ZetaConfig::default()
            },
        );
        let capped = m.zeta(1 << 30);
        assert!(capped.is_finite());
        assert!((capped - m.zeta(4096)).abs() < 1e-12);
    }

    #[test]
    fn wa_conventional_is_at_least_one() {
        let m = lognormal_model(5.0, 2.0, 50.0);
        let wa = m.wa_conventional(512);
        assert!(wa >= 1.0);
        assert!(wa < 100.0, "wa={wa} looks runaway");
    }
}
