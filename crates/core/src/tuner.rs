//! Algorithm 1: the Separation Policy Tuning Algorithm.
//!
//! Given the memory budget `n`, the delay distribution and the generation
//! interval, the tuner evaluates `r_c` and scans `r_s(n_seq)` over
//! `n_seq ∈ [1, n−1]`, returning the policy with the lower predicted WA —
//! `π_c`, or `π_s(n̂*_seq)` with the minimising capacity.
//!
//! A coarse-then-refine scan keeps the number of ζ evaluations manageable
//! for online use (the paper calls the result "(sub)optimal"): a first pass
//! at `step` granularity, then a unit-step pass around the coarse minimum.

use seplsm_types::{Policy, Result};

use crate::wa::WaModel;

/// Scan options for Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct TunerOptions {
    /// Coarse scan granularity over `n_seq` (1 = exhaustive, the paper's
    /// literal loop).
    pub step: usize,
    /// Record the whole `(n_seq, r_s)` curve (for plotting Figs. 7/9).
    pub record_curve: bool,
}

impl Default for TunerOptions {
    fn default() -> Self {
        Self {
            step: 1,
            record_curve: false,
        }
    }
}

impl TunerOptions {
    /// Exhaustive unit-step scan recording the full curve.
    pub fn exhaustive_with_curve() -> Self {
        Self {
            step: 1,
            record_curve: true,
        }
    }

    /// Coarse scan for online use (≈128 coarse evaluations + refinement).
    pub fn online(n: usize) -> Self {
        Self {
            step: (n / 128).max(1),
            record_curve: false,
        }
    }
}

/// The outcome of one tuning run.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Predicted WA under `π_c`.
    pub r_c: f64,
    /// Minimising in-order capacity `n̂*_seq`.
    pub best_n_seq: usize,
    /// Predicted minimum WA under `π_s`, `r*_s = r_s(n̂*_seq)`.
    pub r_s_star: f64,
    /// The chosen policy (line 10–14 of Algorithm 1).
    pub decision: Policy,
    /// The scanned `(n_seq, r_s(n_seq))` curve, if requested.
    pub curve: Vec<(usize, f64)>,
}

impl TuningOutcome {
    /// `true` when the tuner chose the separation policy.
    pub fn chose_separation(&self) -> bool {
        self.decision.is_separation()
    }
}

/// Runs Algorithm 1 against a [`WaModel`].
///
/// # Errors
/// Propagates model failures (pathological arrival-ratio solves).
pub fn tune(model: &WaModel, options: TunerOptions) -> Result<TuningOutcome> {
    let n = model.budget();
    let r_c = model.wa_conventional();

    let mut curve = Vec::new();
    let mut best_n_seq = 0usize;
    let mut r_s_star = f64::INFINITY;

    let evaluate = |n_seq: usize,
                    curve: &mut Vec<(usize, f64)>,
                    best_n_seq: &mut usize,
                    r_s_star: &mut f64|
     -> Result<()> {
        let est = model.wa_separation(n_seq)?;
        if options.record_curve {
            curve.push((n_seq, est.wa));
        }
        if est.wa < *r_s_star {
            *r_s_star = est.wa;
            *best_n_seq = n_seq;
        }
        Ok(())
    };

    // Coarse pass (lines 4–9 of Algorithm 1, at `step` granularity).
    let step = options.step.max(1);
    let mut n_seq = 1usize;
    while n_seq < n {
        evaluate(n_seq, &mut curve, &mut best_n_seq, &mut r_s_star)?;
        n_seq += step;
    }
    // Always include the right edge so the coarse grid cannot miss it.
    if step > 1 && (n - 1) % step != 1 % step {
        evaluate(n - 1, &mut curve, &mut best_n_seq, &mut r_s_star)?;
    }
    // Refinement around the coarse minimum.
    if step > 1 {
        let lo = best_n_seq.saturating_sub(step).max(1);
        let hi = (best_n_seq + step).min(n - 1);
        for n_seq in lo..=hi {
            evaluate(n_seq, &mut curve, &mut best_n_seq, &mut r_s_star)?;
        }
    }

    if options.record_curve {
        curve.sort_by_key(|&(s, _)| s);
        curve.dedup_by_key(|&mut (s, _)| s);
    }

    let decision = if r_s_star < r_c {
        Policy::separation(n, best_n_seq)?
    } else {
        Policy::conventional(n)
    };
    Ok(TuningOutcome {
        r_c,
        best_n_seq,
        r_s_star,
        decision,
        curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zeta::ZetaConfig;
    use seplsm_dist::{Constant, LogNormal, Mixture, Shifted};
    use std::sync::Arc;

    fn model(mu: f64, sigma: f64, dt: f64, n: usize) -> WaModel {
        WaModel::new(Arc::new(LogNormal::new(mu, sigma)), dt, n)
    }

    #[test]
    fn in_order_workload_chooses_conventional() {
        let m = WaModel::new(Arc::new(Constant::new(0.0)), 50.0, 64);
        let out = tune(&m, TunerOptions::default()).expect("tune");
        // Both predict WA 1; the tie-break (strict <) keeps pi_c.
        assert!(!out.chose_separation());
        assert!((out.r_c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_straggler_workload_chooses_separation() {
        // Mostly prompt arrivals plus a heavy straggler mode: the S-9-style
        // scenario where the paper shows pi_s wins (Fig. 11).
        let dist = Mixture::of_two(
            0.9,
            LogNormal::new(2.0, 0.5),
            0.1,
            Shifted::new(LogNormal::new(4.0, 1.0), 5_000.0),
        );
        let m = WaModel::new(Arc::new(dist), 50.0, 128);
        let out = tune(&m, TunerOptions::default()).expect("tune");
        assert!(
            out.chose_separation(),
            "r_c={}, r_s*={} at n_seq={}",
            out.r_c,
            out.r_s_star,
            out.best_n_seq
        );
        assert!(out.r_s_star < out.r_c);
    }

    #[test]
    fn curve_is_recorded_and_covers_the_domain() {
        let m = model(5.0, 2.0, 50.0, 64);
        let out =
            tune(&m, TunerOptions::exhaustive_with_curve()).expect("tune");
        assert_eq!(out.curve.len(), 63);
        assert_eq!(out.curve.first().expect("first").0, 1);
        assert_eq!(out.curve.last().expect("last").0, 63);
        // The recorded minimum matches the reported one.
        let (min_seq, min_wa) = out
            .curve
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        assert_eq!(min_seq, out.best_n_seq);
        assert!((min_wa - out.r_s_star).abs() < 1e-12);
    }

    #[test]
    fn coarse_scan_approaches_exhaustive_minimum() {
        let m = model(5.0, 2.0, 20.0, 256);
        let exact = tune(&m, TunerOptions::default()).expect("exact");
        let coarse = tune(&m, TunerOptions::online(256)).expect("coarse");
        assert!(
            coarse.r_s_star <= exact.r_s_star * 1.02 + 1e-9,
            "coarse {} vs exact {}",
            coarse.r_s_star,
            exact.r_s_star
        );
    }

    #[test]
    fn decision_carries_the_best_split() {
        let m = WaModel::with_zeta_config(
            Arc::new(LogNormal::new(5.0, 2.0)),
            10.0,
            128,
            ZetaConfig::default(),
        );
        let out = tune(&m, TunerOptions::default()).expect("tune");
        if let Policy::Separation {
            seq_capacity,
            nonseq_capacity,
        } = out.decision
        {
            assert_eq!(seq_capacity, out.best_n_seq);
            assert_eq!(seq_capacity + nonseq_capacity, 128);
        } else {
            // Under severe disorder separation should win; if not, r_c must
            // genuinely be smaller.
            assert!(out.r_c <= out.r_s_star);
        }
    }
}
