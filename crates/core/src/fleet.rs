//! Per-series adaptive tuning over a multi-series store (§VI at fleet scale).
//!
//! The industrial deployment stores thousands of series per IoTDB instance,
//! and their delay behaviours differ: a vehicle in good coverage produces
//! clean in-order telemetry while another is stuck behind batched re-sends.
//! [`FleetAdaptiveEngine`] runs one [`DelayAnalyzer`] per series over a
//! shared [`MultiSeriesEngine`], so every series converges to its own
//! policy — `π_c` for the clean ones, a tuned `π_s(n̂*_seq)` for the
//! disordered ones.
//!
//! Constructed through [`AdaptiveOpen::adaptive`] on a fleet
//! [`MultiOpenOptions`] builder, so it composes with every fleet storage
//! option. In particular, with [`MultiOpenOptions::arbiter`] the memory
//! arbiter resizes series online, and each tuning decision reads the
//! series' *current* arbiter-assigned budget — Algorithm 1 re-runs
//! against whatever capacity the series holds at that moment. Every
//! applied switch goes through [`MultiSeriesEngine::retune`], which emits
//! a typed `PolicyRetuned` event as the witness.

use std::collections::HashMap;

use std::sync::Arc;

use seplsm_dist::DelayDistribution;
use seplsm_lsm::{MultiOpenOptions, MultiSeriesEngine, SeriesId};
use seplsm_types::{DataPoint, Policy, Result};

use crate::adaptive::{AdaptiveConfig, AdaptiveOpen};
use crate::analyzer::{AnalyzerEvent, DelayAnalyzer};
use crate::tuner::tune;
use crate::wa::WaModel;

impl AdaptiveOpen for MultiOpenOptions {
    type Engine = FleetAdaptiveEngine;

    fn adaptive(self, config: AdaptiveConfig) -> Result<FleetAdaptiveEngine> {
        Ok(FleetAdaptiveEngine::from_engine(self.open()?, config))
    }
}

/// Per-series tuning state.
struct SeriesState {
    analyzer: DelayAnalyzer,
    last_tune_at: u64,
    tunes: u32,
}

/// A fleet of independently-tuned series. Construct with
/// [`AdaptiveOpen::adaptive`]; every series starts from the builder's
/// template policy and is tuned independently against its current budget.
pub struct FleetAdaptiveEngine {
    engine: MultiSeriesEngine,
    config: AdaptiveConfig,
    state: HashMap<SeriesId, SeriesState>,
}

impl FleetAdaptiveEngine {
    /// Wraps an opened fleet engine with per-series controllers.
    pub(crate) fn from_engine(
        engine: MultiSeriesEngine,
        config: AdaptiveConfig,
    ) -> Self {
        Self {
            engine,
            config,
            state: HashMap::new(),
        }
    }

    /// The underlying multi-series engine.
    pub fn engine(&self) -> &MultiSeriesEngine {
        &self.engine
    }

    /// Mutable access to the underlying engine (flushes, WAL syncs).
    pub fn engine_mut(&mut self) -> &mut MultiSeriesEngine {
        &mut self.engine
    }

    /// Active policy of `series`, if it exists.
    pub fn policy(&self, series: SeriesId) -> Option<Policy> {
        self.engine.engine(series).map(|e| e.policy())
    }

    /// Number of tuning decisions taken for `series`.
    pub fn tunes(&self, series: SeriesId) -> u32 {
        self.state.get(&series).map_or(0, |s| s.tunes)
    }

    /// Writes one point, running the per-series analyzer. When the
    /// analyzer reports drift (respecting the hysteresis), Algorithm 1
    /// re-runs against the series' *current* memory budget — under an
    /// arbiter that is the latest arbiter-assigned capacity — and the
    /// decision lands through [`MultiSeriesEngine::retune`].
    ///
    /// # Errors
    /// Storage failures; tuning failures leave the current policy in force.
    pub fn append(&mut self, series: SeriesId, p: DataPoint) -> Result<()> {
        self.engine.append(series, p)?;
        let analyzer_config = self.config.analyzer;
        let state = self.state.entry(series).or_insert_with(|| SeriesState {
            analyzer: DelayAnalyzer::new(analyzer_config),
            last_tune_at: 0,
            tunes: 0,
        });
        let event = state.analyzer.observe(&p);
        let Some(engine) = self.engine.engine(series) else {
            return Ok(());
        };
        let user_points = engine.metrics().user_points;
        let budget = engine.policy().total_capacity();
        let due = match event {
            AnalyzerEvent::None => false,
            AnalyzerEvent::NeedsInitialTune => true,
            AnalyzerEvent::DriftDetected => {
                user_points
                    >= state.last_tune_at + self.config.min_points_between_tunes
            }
        };
        if !due {
            return Ok(());
        }
        let Some(dist) = state.analyzer.build_distribution() else {
            return Ok(());
        };
        let Some(delta_t) = state.analyzer.estimated_delta_t() else {
            return Ok(());
        };
        let model = WaModel::with_zeta_config(
            Arc::new(dist) as Arc<dyn DelayDistribution>,
            delta_t,
            budget,
            self.config.zeta,
        );
        let Ok(outcome) = tune(&model, self.config.tuner_for(budget)) else {
            return Ok(());
        };
        self.engine.retune(series, outcome.decision)?;
        state.analyzer.mark_tuned();
        state.last_tune_at = user_points;
        state.tunes += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::AnalyzerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seplsm_dist::{Constant, LogNormal};
    use seplsm_lsm::{ArbiterConfig, EngineConfig};
    use seplsm_types::TimeRange;

    fn config() -> AdaptiveConfig {
        AdaptiveConfig::new().with_analyzer(AnalyzerConfig {
            window: 512,
            min_samples: 256,
            check_every: 128,
            ks_alpha: 0.01,
        })
    }

    fn fleet() -> FleetAdaptiveEngine {
        MultiOpenOptions::new(
            EngineConfig::new(Policy::conventional(64)).with_sstable_points(32),
        )
        .adaptive(config())
        .expect("fleet")
    }

    #[test]
    fn series_converge_to_different_policies() {
        let mut fleet = fleet();
        let clean = SeriesId(1);
        let messy = SeriesId(2);
        let wild = LogNormal::new(6.0, 2.0);
        let mut rng = StdRng::seed_from_u64(9);

        // Interleave a clean and a heavily disordered series.
        let mut messy_points: Vec<DataPoint> = (0..3000)
            .map(|i| {
                DataPoint::with_delay(
                    i as i64 * 50,
                    wild.sample(&mut rng) as i64,
                    0.0,
                )
            })
            .collect();
        messy_points.sort_by_key(|p| p.arrival_time);
        for (i, mp) in messy_points.iter().enumerate() {
            fleet
                .append(
                    clean,
                    DataPoint::new(i as i64 * 50, i as i64 * 50, 1.0),
                )
                .expect("clean append");
            fleet.append(messy, *mp).expect("messy append");
        }

        assert!(fleet.tunes(clean) >= 1);
        assert!(fleet.tunes(messy) >= 1);
        // Every applied decision is witnessed on the typed retune path.
        assert!(
            fleet.engine().retunes()
                >= u64::from(fleet.tunes(clean) + fleet.tunes(messy))
        );
        let clean_policy = fleet.policy(clean).expect("clean exists");
        let messy_policy = fleet.policy(messy).expect("messy exists");
        assert!(!clean_policy.is_separation(), "clean series must stay pi_c");
        assert!(
            messy_policy.is_separation(),
            "disordered series must switch to pi_s, got {}",
            messy_policy.name()
        );
    }

    #[test]
    fn all_data_remains_queryable_per_series() {
        let mut fleet = fleet();
        for s in 0..5u32 {
            for i in 0..600i64 {
                fleet
                    .append(
                        SeriesId(s),
                        DataPoint::new(i * 50, i * 50 + (i % 7) * 10, s as f64),
                    )
                    .expect("append");
            }
        }
        for s in 0..5u32 {
            let (pts, _) = fleet
                .engine()
                .query(SeriesId(s), TimeRange::new(0, 600 * 50))
                .expect("query");
            assert_eq!(pts.len(), 600, "series {s}");
            assert!(pts.iter().all(|p| p.value == s as f64));
        }
    }

    #[test]
    fn zero_delay_series_never_switches() {
        let mut fleet = fleet();
        let d = Constant::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..2000i64 {
            let delay = d.sample(&mut rng) as i64;
            fleet
                .append(SeriesId(0), DataPoint::with_delay(i * 50, delay, 0.0))
                .expect("append");
        }
        assert!(!fleet.policy(SeriesId(0)).expect("exists").is_separation());
    }

    #[test]
    fn tuning_tracks_the_arbiter_assigned_budget() {
        // An arbiter-managed fleet: the hot, disordered series grows past
        // its admission floor, and its tuning decisions must be sized
        // against the grown budget (n_seq + n_nonseq = current capacity).
        let mut fleet = MultiOpenOptions::new(
            EngineConfig::new(Policy::conventional(64)).with_sstable_points(32),
        )
        .arbiter(
            ArbiterConfig::new(512)
                .with_floor(16)
                .with_rebalance_every(256),
        )
        .adaptive(config())
        .expect("fleet");
        let wild = LogNormal::new(6.0, 2.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut pts: Vec<DataPoint> = (0..4000)
            .map(|i| {
                DataPoint::with_delay(
                    i as i64 * 50,
                    wild.sample(&mut rng) as i64,
                    0.0,
                )
            })
            .collect();
        pts.sort_by_key(|p| p.arrival_time);
        // A cold sibling so the arbiter has someone to shrink.
        fleet
            .append(SeriesId(7), DataPoint::new(0, 0, 0.0))
            .expect("cold");
        for p in &pts {
            fleet.append(SeriesId(1), *p).expect("append");
        }
        let hot_cap = fleet.engine().series_capacity(SeriesId(1)).expect("cap");
        let cold_cap =
            fleet.engine().series_capacity(SeriesId(7)).expect("cap");
        assert!(hot_cap > cold_cap, "hot={hot_cap} cold={cold_cap}");
        assert!(fleet.tunes(SeriesId(1)) >= 1);
        let policy = fleet.policy(SeriesId(1)).expect("policy");
        assert_eq!(
            policy.total_capacity() as u64,
            hot_cap,
            "tuned split must cover the arbiter-assigned budget, got {}",
            policy.name()
        );
    }
}
