//! The paper's primary contribution: write-amplification models for the
//! conventional (`π_c`) and separation (`π_s`) buffering policies of a
//! leveled LSM-tree, the policy-tuning algorithm built on them, and the
//! online delay analyzer that drives `π_adaptive`.
//!
//! From *"Separation or Not: On Handling Out-of-Order Time-Series Data in
//! Leveled LSM-Tree"* (ICDE 2022):
//!
//! | Paper artefact | Here |
//! |---|---|
//! | Eq. 1 — arrival-rate ratio `g(·)` | [`ArrivalRatioModel`] |
//! | Eq. 2 — subsequent-point count `ζ(n)` | [`ZetaModel`] |
//! | Eq. 3 — `r_c = ζ(n)/n + 1` | [`WaModel::wa_conventional`] |
//! | Eq. 4/5 — `N_arrive`, `r_s(n_seq)` | [`WaModel::wa_separation`] |
//! | Algorithm 1 — policy tuning | [`tune`] |
//! | Delay analyzer (§I-D, §VI) | [`DelayAnalyzer`] |
//! | `π_adaptive` (Figs. 10, 17) | [`AdaptiveEngine`] |
//!
//! # Choosing a policy for a workload
//!
//! ```
//! use std::sync::Arc;
//! use seplsm_core::{tune, TunerOptions, WaModel};
//! use seplsm_dist::LogNormal;
//!
//! // Lognormal delays (mu = 5, sigma = 2), points generated every 50 ms,
//! // memory budget of 512 points — the paper's Fig. 7 setting.
//! let model = WaModel::new(Arc::new(LogNormal::new(5.0, 2.0)), 50.0, 512);
//! let outcome = tune(&model, TunerOptions::default())?;
//! println!(
//!     "r_c = {:.3}, min r_s = {:.3} at n_seq = {} -> {}",
//!     outcome.r_c,
//!     outcome.r_s_star,
//!     outcome.best_n_seq,
//!     outcome.decision.name(),
//! );
//! # Ok::<(), seplsm_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod adaptive;
pub mod analyzer;
pub mod arrival;
pub mod fleet;
pub mod read;
pub mod tuner;
pub mod wa;
pub mod zeta;

pub use adaptive::{AdaptiveConfig, AdaptiveEngine, AdaptiveOpen, TuneRecord};
pub use analyzer::{AnalyzerConfig, AnalyzerEvent, DelayAnalyzer};
pub use arrival::ArrivalRatioModel;
pub use fleet::FleetAdaptiveEngine;
pub use read::{HistoricalQueryEstimate, ReadCostModel, RecentQueryEstimate};
pub use tuner::{tune, TunerOptions, TuningOutcome};
pub use wa::{SeparationEstimate, WaModel};
pub use zeta::{GapModel, ZetaConfig, ZetaModel};
