//! The online delay analyzer (paper §I-D, §VI).
//!
//! The analyzer is the piece deployed inside Apache IoTDB: it watches the
//! write stream, collects per-point delays, maintains the statistical
//! profile (empirical PDF/CDF) and the observed generation interval, and
//! signals when the delay distribution has *drifted* from the profile that
//! was in force at the last tuning decision — the trigger for re-running
//! Algorithm 1 in the adaptive experiments (Figs. 10, 17).
//!
//! Drift detection uses the two-sample Kolmogorov–Smirnov distance between
//! the current window and the reference profile, compared against the
//! asymptotic critical value at the configured significance.

use std::collections::VecDeque;

use seplsm_dist::stats::{ks_critical, ks_two_sample};
use seplsm_dist::Empirical;
use seplsm_types::DataPoint;

/// Analyzer parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzerConfig {
    /// Number of recent delays kept in the sliding window.
    pub window: usize,
    /// Minimum delays collected before the first tune is proposed.
    pub min_samples: usize,
    /// Run the drift test every this many observations.
    pub check_every: usize,
    /// KS significance level for declaring drift (e.g. 0.01).
    pub ks_alpha: f64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        Self {
            window: 4096,
            min_samples: 1024,
            check_every: 1024,
            ks_alpha: 0.01,
        }
    }
}

/// What [`DelayAnalyzer::observe`] concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyzerEvent {
    /// Keep writing; nothing changed.
    None,
    /// No profile is in force yet and enough samples have accumulated —
    /// run the first tune.
    NeedsInitialTune,
    /// The delay distribution drifted from the in-force profile — re-tune.
    DriftDetected,
}

/// Online collector of delays and generation intervals.
#[derive(Debug)]
pub struct DelayAnalyzer {
    config: AnalyzerConfig,
    /// Recent delays (ms), sliding window.
    delays: VecDeque<f64>,
    /// Recent generation timestamps, for estimating `Δt`.
    gen_times: VecDeque<i64>,
    /// Delay snapshot in force since the last tune.
    profile: Option<Vec<f64>>,
    observed: u64,
}

impl DelayAnalyzer {
    /// Creates an analyzer with the given parameters.
    pub fn new(config: AnalyzerConfig) -> Self {
        assert!(config.window >= 2, "window must hold at least two delays");
        assert!(config.min_samples >= 2);
        assert!(config.check_every >= 1);
        Self {
            config,
            delays: VecDeque::with_capacity(config.window),
            gen_times: VecDeque::with_capacity(config.window),
            profile: None,
            observed: 0,
        }
    }

    /// Total points observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of delays currently windowed.
    pub fn window_len(&self) -> usize {
        self.delays.len()
    }

    /// Feeds one written point; returns whether a (re-)tune is warranted.
    pub fn observe(&mut self, p: &DataPoint) -> AnalyzerEvent {
        self.observed += 1;
        if self.delays.len() == self.config.window {
            self.delays.pop_front();
            self.gen_times.pop_front();
        }
        self.delays.push_back(p.delay() as f64);
        self.gen_times.push_back(p.gen_time);

        if self.delays.len() < self.config.min_samples
            || self.observed % self.config.check_every as u64 != 0
        {
            return AnalyzerEvent::None;
        }
        match &self.profile {
            None => AnalyzerEvent::NeedsInitialTune,
            Some(profile) => {
                let current: Vec<f64> = self.delays.iter().copied().collect();
                let d = ks_two_sample(profile, &current);
                let crit = ks_critical(
                    profile.len(),
                    current.len(),
                    self.config.ks_alpha,
                );
                if d > crit {
                    AnalyzerEvent::DriftDetected
                } else {
                    AnalyzerEvent::None
                }
            }
        }
    }

    /// Snapshot of the current delay window.
    pub fn current_delays(&self) -> Vec<f64> {
        self.delays.iter().copied().collect()
    }

    /// Builds the empirical delay distribution over the current window.
    ///
    /// Returns `None` with fewer than two windowed delays.
    pub fn build_distribution(&self) -> Option<Empirical> {
        if self.delays.len() < 2 {
            return None;
        }
        Some(Empirical::from_samples(&self.current_delays()))
    }

    /// Estimated generation interval `Δt`: the median gap between
    /// consecutive *sorted* generation timestamps in the window.
    ///
    /// Sorting first makes the estimate robust to out-of-order arrival; the
    /// median makes it robust to gaps from lost points.
    pub fn estimated_delta_t(&self) -> Option<f64> {
        if self.gen_times.len() < 2 {
            return None;
        }
        let mut sorted: Vec<i64> = self.gen_times.iter().copied().collect();
        sorted.sort_unstable();
        let mut gaps: Vec<i64> = sorted
            .windows(2)
            .map(|w| w[1] - w[0])
            .filter(|&g| g > 0)
            .collect();
        if gaps.is_empty() {
            return None;
        }
        gaps.sort_unstable();
        Some(gaps[gaps.len() / 2] as f64)
    }

    /// Marks the current window as the in-force profile (call after tuning).
    pub fn mark_tuned(&mut self) {
        self.profile = Some(self.current_delays());
    }

    /// `true` once a profile is in force.
    pub fn has_profile(&self) -> bool {
        self.profile.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_small() -> AnalyzerConfig {
        AnalyzerConfig {
            window: 256,
            min_samples: 64,
            check_every: 64,
            ks_alpha: 0.01,
        }
    }

    fn feed(
        analyzer: &mut DelayAnalyzer,
        n: usize,
        start_tg: i64,
        dt: i64,
        delay: impl Fn(usize) -> i64,
    ) -> (Vec<AnalyzerEvent>, i64) {
        let mut events = Vec::new();
        let mut tg = start_tg;
        for i in 0..n {
            let e = analyzer.observe(&DataPoint::with_delay(tg, delay(i), 0.0));
            if e != AnalyzerEvent::None {
                events.push(e);
            }
            tg += dt;
        }
        (events, tg)
    }

    #[test]
    fn first_tune_is_proposed_after_min_samples() {
        let mut a = DelayAnalyzer::new(config_small());
        let (events, _) = feed(&mut a, 64, 0, 50, |i| (i as i64 * 7) % 100);
        assert_eq!(events, vec![AnalyzerEvent::NeedsInitialTune]);
    }

    #[test]
    fn stable_distribution_never_drifts() {
        let mut a = DelayAnalyzer::new(config_small());
        let (_, next_tg) = feed(&mut a, 64, 0, 50, |i| (i as i64 * 7) % 100);
        a.mark_tuned();
        let (events, _) =
            feed(&mut a, 1000, next_tg, 50, |i| (i as i64 * 7) % 100);
        assert!(events.is_empty(), "false drift: {events:?}");
    }

    #[test]
    fn distribution_shift_is_detected() {
        let mut a = DelayAnalyzer::new(config_small());
        let (_, next_tg) = feed(&mut a, 256, 0, 50, |i| (i as i64 * 7) % 100);
        a.mark_tuned();
        // Delays jump by an order of magnitude.
        let (events, _) =
            feed(&mut a, 512, next_tg, 50, |i| 2_000 + (i as i64 * 13) % 500);
        assert!(
            events.contains(&AnalyzerEvent::DriftDetected),
            "drift not detected: {events:?}"
        );
    }

    #[test]
    fn delta_t_is_estimated_from_sorted_gen_times() {
        let mut a = DelayAnalyzer::new(config_small());
        // Out-of-order arrival of a Δt=50 series.
        for &tg in &[100i64, 0, 200, 50, 150, 300, 250] {
            a.observe(&DataPoint::with_delay(tg, 5, 0.0));
        }
        assert_eq!(a.estimated_delta_t(), Some(50.0));
    }

    #[test]
    fn delta_t_ignores_duplicate_timestamps() {
        let mut a = DelayAnalyzer::new(config_small());
        for &tg in &[0i64, 0, 50, 50, 100] {
            a.observe(&DataPoint::with_delay(tg, 5, 0.0));
        }
        assert_eq!(a.estimated_delta_t(), Some(50.0));
    }

    #[test]
    fn window_is_bounded() {
        let mut a = DelayAnalyzer::new(config_small());
        feed(&mut a, 10_000, 0, 50, |_| 5);
        assert_eq!(a.window_len(), 256);
        assert_eq!(a.observed(), 10_000);
    }

    #[test]
    fn build_distribution_reflects_window() {
        let mut a = DelayAnalyzer::new(config_small());
        feed(&mut a, 256, 0, 50, |_| 42);
        let d = a.build_distribution().expect("distribution");
        use seplsm_dist::DelayDistribution;
        assert_eq!(d.quantile(0.5), 42.0);
    }

    #[test]
    fn empty_analyzer_has_no_estimates() {
        let a = DelayAnalyzer::new(config_small());
        assert!(a.build_distribution().is_none());
        assert!(a.estimated_delta_t().is_none());
        assert!(!a.has_profile());
    }
}
