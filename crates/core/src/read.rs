//! A first-order read-cost model (extension).
//!
//! The paper *measures* query behaviour (Figs. 12–15, 20) and explains it
//! qualitatively: recent-window cost is dominated by the newest flushed
//! file; historical cost by how many (and how wide) files overlap the
//! queried period, where `π_c` files are widened by the out-of-order points
//! mixed into each flush. This module turns those explanations into simple
//! closed-form estimates so the trade-off can be reasoned about *before*
//! running a workload — an extension beyond the paper's scope, validated
//! qualitatively against the measured experiments in `tests/`.
//!
//! Modelling assumptions (deliberately first-order):
//! * arrivals come at rate `1/Δt`; a buffer of capacity `c` flushes every
//!   `c·Δt` ms and produces a file of `c` points;
//! * a recent window of `w` ms overlaps the newest file with probability
//!   `min(1, w/(c·Δt))` (the file's right edge trails the write head
//!   uniformly);
//! * a `π_c` file's generation-time span is widened beyond `c·Δt` by the
//!   out-of-order points it contains — approximated by the delay
//!   distribution's `1 − 1/c` quantile (the expected extreme delay among
//!   the `c` buffered points); `π_s` in-order files have no widening.

use std::sync::Arc;

use seplsm_dist::DelayDistribution;
use seplsm_types::Policy;

/// Estimated cost of one recent-window query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecentQueryEstimate {
    /// Probability the query touches the newest on-disk file at all.
    pub disk_hit_probability: f64,
    /// Expected SSTable seeks per query.
    pub expected_seeks: f64,
    /// Expected on-disk points scanned per query.
    pub expected_scanned: f64,
    /// Expected points returned (`w/Δt`).
    pub expected_returned: f64,
    /// Expected read amplification (`scanned/returned`).
    pub expected_ra: f64,
}

/// Estimated cost of one historical query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoricalQueryEstimate {
    /// Effective generation-time span of one flushed file (ms).
    pub file_span_ms: f64,
    /// Expected files overlapping the query window.
    pub expected_seeks: f64,
    /// Expected on-disk points scanned per query.
    pub expected_scanned: f64,
}

/// Read-cost estimator for one workload.
pub struct ReadCostModel {
    dist: Arc<dyn DelayDistribution>,
    delta_t: f64,
}

impl ReadCostModel {
    /// Creates the estimator for the given delay law and interval `Δt`.
    pub fn new(dist: Arc<dyn DelayDistribution>, delta_t: f64) -> Self {
        assert!(delta_t > 0.0, "delta_t must be positive");
        Self { dist, delta_t }
    }

    /// The flush file size (points) produced by the policy's in-order path:
    /// `n` under `π_c`, `n_seq` under `π_s`.
    fn flush_points(policy: Policy) -> f64 {
        match policy {
            Policy::Conventional { capacity } => capacity as f64,
            Policy::Separation { seq_capacity, .. } => seq_capacity as f64,
        }
    }

    /// Widening of a flushed file's span by buffered out-of-order points:
    /// zero for `π_s` in-order files, the `1 − 1/c` delay quantile for `π_c`.
    fn span_widening_ms(&self, policy: Policy) -> f64 {
        match policy {
            Policy::Conventional { capacity } => {
                let q = 1.0 - 1.0 / (capacity as f64).max(2.0);
                self.dist.quantile(q).max(0.0)
            }
            Policy::Separation { .. } => 0.0,
        }
    }

    /// Effective span (ms) of one flushed file under `policy`.
    pub fn file_span_ms(&self, policy: Policy) -> f64 {
        Self::flush_points(policy) * self.delta_t
            + self.span_widening_ms(policy)
    }

    /// Estimates one recent-window query of `window_ms`.
    pub fn recent(
        &self,
        policy: Policy,
        window_ms: f64,
    ) -> RecentQueryEstimate {
        assert!(window_ms > 0.0);
        let file_points = Self::flush_points(policy);
        let flush_period_ms = file_points * self.delta_t;
        let p = (window_ms / flush_period_ms).min(1.0);
        let expected_returned = window_ms / self.delta_t;
        let expected_scanned = p * file_points;
        RecentQueryEstimate {
            disk_hit_probability: p,
            expected_seeks: p,
            expected_scanned,
            expected_returned,
            expected_ra: expected_scanned / expected_returned,
        }
    }

    /// Estimates one historical query of `window_ms` against a backlog of
    /// `backlog_files` uncompacted level-1 files plus the compacted run.
    pub fn historical(
        &self,
        policy: Policy,
        window_ms: f64,
        backlog_files: f64,
    ) -> HistoricalQueryEstimate {
        assert!(window_ms > 0.0 && backlog_files >= 0.0);
        let file_points = Self::flush_points(policy);
        let span = self.file_span_ms(policy);
        // Run tables: non-overlapping, so the window touches
        // 1 + w/(table span) of them; table span has no widening once
        // compacted.
        let run_span = policy.total_capacity() as f64 * self.delta_t;
        let run_seeks = 1.0 + window_ms / run_span;
        // Backlog files each overlap an interior window with probability
        // (span + w) / (backlog extent). Approximating the backlog as spread
        // over `backlog_files` flush periods:
        let backlog_extent =
            (backlog_files * file_points * self.delta_t).max(span + window_ms);
        let backlog_seeks =
            backlog_files * ((span + window_ms) / backlog_extent).min(1.0);
        let expected_seeks = run_seeks + backlog_seeks;
        HistoricalQueryEstimate {
            file_span_ms: span,
            expected_seeks,
            expected_scanned: run_seeks * policy.total_capacity() as f64
                + backlog_seeks * file_points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seplsm_dist::{Constant, LogNormal};

    fn model(mu: f64, sigma: f64, dt: f64) -> ReadCostModel {
        ReadCostModel::new(Arc::new(LogNormal::new(mu, sigma)), dt)
    }

    #[test]
    fn recent_ra_is_file_size_over_window_when_hit() {
        let m = model(4.0, 1.5, 50.0);
        let est = m.recent(Policy::conventional(512), 5_000.0);
        // Hit probability 5000/25600; scanned = p*512; returned = 100.
        assert!((est.disk_hit_probability - 5_000.0 / 25_600.0).abs() < 1e-12);
        assert!((est.expected_returned - 100.0).abs() < 1e-12);
        assert!(est.expected_ra > 0.9 && est.expected_ra < 1.1);
    }

    #[test]
    fn window_larger_than_flush_period_always_hits() {
        let m = model(4.0, 1.5, 10.0);
        let est = m.recent(Policy::conventional(512), 10_000.0);
        assert_eq!(est.disk_hit_probability, 1.0);
        assert_eq!(est.expected_seeks, 1.0);
    }

    #[test]
    fn separation_reduces_scanned_points_per_hit() {
        let m = model(5.0, 2.0, 50.0);
        let conv = m.recent(Policy::conventional(512), 2_000.0);
        let sep =
            m.recent(Policy::separation(512, 128).expect("policy"), 2_000.0);
        // Smaller files: hits are more likely but each is cheaper.
        assert!(sep.disk_hit_probability > conv.disk_hit_probability);
        assert!(
            sep.expected_scanned <= conv.expected_scanned + 1e-9,
            "sep {} vs conv {}",
            sep.expected_scanned,
            conv.expected_scanned
        );
    }

    #[test]
    fn pi_c_files_are_widened_by_disorder() {
        let heavy = model(5.0, 2.0, 50.0);
        let none = ReadCostModel::new(Arc::new(Constant::new(0.0)), 50.0);
        let widened = heavy.file_span_ms(Policy::conventional(512));
        let tight = none.file_span_ms(Policy::conventional(512));
        assert!(widened > tight, "widened {widened} <= tight {tight}");
        // pi_s in-order files never widen.
        let sep = Policy::separation(512, 256).expect("policy");
        assert_eq!(heavy.file_span_ms(sep), 256.0 * 50.0);
    }

    #[test]
    fn historical_seeks_grow_with_disorder_under_pi_c() {
        let mild = model(4.0, 1.5, 10.0);
        let wild = model(5.0, 2.0, 10.0);
        let backlog = 3.0;
        let h_mild =
            mild.historical(Policy::conventional(512), 1_000.0, backlog);
        let h_wild =
            wild.historical(Policy::conventional(512), 1_000.0, backlog);
        assert!(
            h_wild.expected_seeks > h_mild.expected_seeks,
            "wild {} <= mild {}",
            h_wild.expected_seeks,
            h_mild.expected_seeks
        );
        // And pi_s is immune to the widening.
        let sep = Policy::separation(512, 256).expect("policy");
        let s_wild = wild.historical(sep, 1_000.0, backlog);
        assert!(s_wild.expected_seeks < h_wild.expected_seeks);
    }

    #[test]
    fn historical_seeks_grow_with_window() {
        let m = model(4.0, 1.75, 50.0);
        let pol = Policy::conventional(512);
        let small = m.historical(pol, 500.0, 2.0);
        let large = m.historical(pol, 5_000.0, 2.0);
        assert!(large.expected_seeks > small.expected_seeks);
        assert!(large.expected_scanned > small.expected_scanned);
    }
}
