//! `π_adaptive`: the self-tuning engine (paper Figs. 10, 17; §VI).
//!
//! [`AdaptiveEngine`] glues the pieces together the way the deployed IoTDB
//! analyzer module does:
//!
//! 1. every written point is fed to the storage engine *and* to the
//!    [`DelayAnalyzer`];
//! 2. when the analyzer reports that the delay distribution changed (or that
//!    enough samples exist for a first decision), the engine fits the
//!    empirical delay distribution, runs Algorithm 1 against the engine's
//!    *current* memory budget, and switches the buffering policy to the
//!    winner.
//!
//! Policy switches re-route the buffered points without touching the disk
//! (see [`LsmEngine::set_policy`]).
//!
//! # Configuration layering
//!
//! Three surfaces, three concerns — each knob lives in exactly one:
//!
//! * [`Policy`] — the *paper knob*: `π_c(n)` vs. `π_s(n_seq)`, nothing
//!   else.
//! * [`EngineConfig`](seplsm_lsm::EngineConfig) — *engine mechanics*:
//!   the starting policy plus SSTable size, WA snapshots, probes.
//! * [`AdaptiveConfig`] — the *controller*: drift detection, tuning-scan
//!   and ζ parameters, and retune hysteresis. It carries no memory
//!   budget: the budget is whatever the engine's current policy holds
//!   (which the fleet memory arbiter may resize at any time).
//!
//! Adaptive tuning is an open-time option: build the storage engine with
//! its own [`OpenOptions`], then finish with
//! [`AdaptiveOpen::adaptive`] instead of `open`:
//!
//! ```
//! use seplsm_core::{AdaptiveConfig, AdaptiveOpen};
//! use seplsm_lsm::{EngineConfig, OpenOptions};
//! use seplsm_types::Policy;
//!
//! let engine = OpenOptions::new(EngineConfig::new(Policy::conventional(512)))
//!     .adaptive(AdaptiveConfig::new())?;
//! assert!(!engine.policy().is_separation());
//! # Ok::<(), seplsm_types::Error>(())
//! ```

use std::sync::Arc;

use seplsm_dist::DelayDistribution;
use seplsm_lsm::{LsmEngine, OpenOptions};
use seplsm_types::{DataPoint, Policy, Result};

use crate::analyzer::{AnalyzerConfig, AnalyzerEvent, DelayAnalyzer};
use crate::tuner::{tune, TunerOptions};
use crate::wa::WaModel;
use crate::zeta::ZetaConfig;

/// Configuration of the adaptive *controller* — drift detection and
/// tuning parameters only. Engine mechanics (budget, SSTable size,
/// snapshots) belong to [`EngineConfig`](seplsm_lsm::EngineConfig); the
/// tuning budget `n` is always read from the engine's current policy at
/// decision time.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Analyzer (drift-detection) parameters.
    pub analyzer: AnalyzerConfig,
    /// Tuning-scan options; `None` derives the online granularity
    /// [`TunerOptions::online`] from the budget at each decision.
    pub tuner: Option<TunerOptions>,
    /// ζ evaluation parameters used for online tuning.
    pub zeta: ZetaConfig,
    /// Minimum user points between two policy switches (hysteresis).
    pub min_points_between_tunes: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptiveConfig {
    /// Sensible defaults: online tuner granularity, cheap ζ, re-tune at
    /// most every `4 × analyzer window` points.
    pub fn new() -> Self {
        let analyzer = AnalyzerConfig::default();
        Self {
            analyzer,
            tuner: None,
            zeta: ZetaConfig::online(),
            min_points_between_tunes: (analyzer.window as u64) * 4,
        }
    }

    /// Overrides the analyzer parameters (also refreshes the hysteresis).
    pub fn with_analyzer(mut self, analyzer: AnalyzerConfig) -> Self {
        self.analyzer = analyzer;
        self.min_points_between_tunes = (analyzer.window as u64) * 4;
        self
    }

    /// Pins the tuning-scan options instead of deriving them from the
    /// budget.
    pub fn with_tuner(mut self, tuner: TunerOptions) -> Self {
        self.tuner = Some(tuner);
        self
    }

    /// Overrides the ζ evaluation parameters.
    pub fn with_zeta(mut self, zeta: ZetaConfig) -> Self {
        self.zeta = zeta;
        self
    }

    /// Overrides the retune hysteresis.
    pub fn with_hysteresis(mut self, points: u64) -> Self {
        self.min_points_between_tunes = points;
        self
    }

    /// The scan options for a decision against `budget` points.
    pub(crate) fn tuner_for(&self, budget: usize) -> TunerOptions {
        self.tuner.unwrap_or_else(|| TunerOptions::online(budget))
    }
}

/// Open-time adaptive tuning: the one way to construct the adaptive
/// wrappers. Implemented for both storage builders —
/// [`OpenOptions`] opens into an [`AdaptiveEngine`], and
/// [`MultiOpenOptions`](seplsm_lsm::MultiOpenOptions) opens into a
/// [`FleetAdaptiveEngine`](crate::fleet::FleetAdaptiveEngine) — so every
/// storage option (store, durability, observer, cache, arbiter) is
/// configured exactly once, on the builder.
pub trait AdaptiveOpen {
    /// The adaptive wrapper this builder opens into.
    type Engine;

    /// Opens the storage engine and attaches the adaptive controller.
    ///
    /// # Errors
    /// Invalid configuration or storage failures while opening.
    fn adaptive(self, config: AdaptiveConfig) -> Result<Self::Engine>;
}

impl AdaptiveOpen for OpenOptions {
    type Engine = AdaptiveEngine;

    fn adaptive(self, config: AdaptiveConfig) -> Result<AdaptiveEngine> {
        Ok(AdaptiveEngine::from_engine(self.open()?, config))
    }
}

/// One recorded tuning decision.
#[derive(Debug, Clone)]
pub struct TuneRecord {
    /// User points written when the decision was made.
    pub at_user_points: u64,
    /// Predicted WA under `π_c`.
    pub r_c: f64,
    /// Predicted minimum WA under `π_s`.
    pub r_s_star: f64,
    /// The adopted policy.
    pub decision: Policy,
    /// Estimated generation interval used for the models.
    pub delta_t: f64,
}

/// A storage engine that re-tunes its buffering policy as delays drift.
/// Constructed through [`AdaptiveOpen::adaptive`] on an engine
/// [`OpenOptions`]; it starts under whatever policy the builder's
/// [`EngineConfig`](seplsm_lsm::EngineConfig) configured (the paper
/// initialises with `π_c`).
pub struct AdaptiveEngine {
    engine: LsmEngine,
    analyzer: DelayAnalyzer,
    config: AdaptiveConfig,
    tunes: Vec<TuneRecord>,
    last_tune_at: u64,
}

impl AdaptiveEngine {
    /// Wraps an opened engine with the adaptive controller.
    pub(crate) fn from_engine(
        engine: LsmEngine,
        config: AdaptiveConfig,
    ) -> Self {
        Self {
            engine,
            analyzer: DelayAnalyzer::new(config.analyzer),
            config,
            tunes: Vec::new(),
            last_tune_at: 0,
        }
    }

    /// The wrapped storage engine.
    pub fn engine(&self) -> &LsmEngine {
        &self.engine
    }

    /// Mutable access to the wrapped engine (queries, flushes).
    pub fn engine_mut(&mut self) -> &mut LsmEngine {
        &mut self.engine
    }

    /// The currently active policy.
    pub fn policy(&self) -> Policy {
        self.engine.policy()
    }

    /// Every tuning decision taken so far.
    pub fn tunes(&self) -> &[TuneRecord] {
        &self.tunes
    }

    /// Writes one point, re-tuning the policy when the analyzer asks for it.
    ///
    /// # Errors
    /// Storage failures; tuner failures are swallowed (the current policy
    /// simply stays in force) because an analyzer must never take down the
    /// write path.
    pub fn append(&mut self, p: DataPoint) -> Result<()> {
        self.engine.append(p)?;
        let event = self.analyzer.observe(&p);
        let due = match event {
            AnalyzerEvent::None => false,
            AnalyzerEvent::NeedsInitialTune => true,
            AnalyzerEvent::DriftDetected => {
                self.engine.metrics().user_points
                    >= self.last_tune_at + self.config.min_points_between_tunes
            }
        };
        if due {
            self.retune()?;
        }
        Ok(())
    }

    /// Runs Algorithm 1 on the analyzer's current window against the
    /// engine's current budget and applies the decision. Exposed for
    /// callers that schedule tuning themselves.
    ///
    /// # Errors
    /// Storage failures while switching policies.
    pub fn retune(&mut self) -> Result<()> {
        let Some(dist) = self.analyzer.build_distribution() else {
            return Ok(());
        };
        let Some(delta_t) = self.analyzer.estimated_delta_t() else {
            return Ok(());
        };
        let budget = self.engine.policy().total_capacity();
        let model = WaModel::with_zeta_config(
            Arc::new(dist) as Arc<dyn DelayDistribution>,
            delta_t,
            budget,
            self.config.zeta,
        );
        let outcome = match tune(&model, self.config.tuner_for(budget)) {
            Ok(o) => o,
            // A failed model evaluation must not break ingestion.
            Err(_) => return Ok(()),
        };
        self.engine.set_policy(outcome.decision)?;
        self.analyzer.mark_tuned();
        self.last_tune_at = self.engine.metrics().user_points;
        self.tunes.push(TuneRecord {
            at_user_points: self.last_tune_at,
            r_c: outcome.r_c,
            r_s_star: outcome.r_s_star,
            decision: outcome.decision,
            delta_t,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seplsm_dist::{DelayDistribution, LogNormal};
    use seplsm_lsm::EngineConfig;

    fn small_config() -> AdaptiveConfig {
        AdaptiveConfig::new().with_analyzer(AnalyzerConfig {
            window: 512,
            min_samples: 256,
            check_every: 128,
            ks_alpha: 0.01,
        })
    }

    fn small_engine() -> AdaptiveEngine {
        OpenOptions::new(
            EngineConfig::new(Policy::conventional(64)).with_sstable_points(32),
        )
        .adaptive(small_config())
        .expect("engine")
    }

    fn write_workload(
        engine: &mut AdaptiveEngine,
        dist: &dyn DelayDistribution,
        n: usize,
        start_tg: i64,
        dt: i64,
        seed: u64,
    ) -> i64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // Points generated on a grid, arriving in arrival-time order within
        // a small reorder buffer (enough realism for the analyzer).
        let mut pts: Vec<DataPoint> = (0..n)
            .map(|i| {
                let tg = start_tg + i as i64 * dt;
                DataPoint::with_delay(tg, dist.sample(&mut rng) as i64, 0.0)
            })
            .collect();
        pts.sort_by_key(|p| p.arrival_time);
        for p in &pts {
            engine.append(*p).expect("append");
        }
        start_tg + n as i64 * dt
    }

    #[test]
    fn starts_conventional_then_tunes_once_samples_accumulate() {
        let mut e = small_engine();
        assert!(!e.policy().is_separation());
        let dist = LogNormal::new(5.0, 2.0);
        write_workload(&mut e, &dist, 2000, 0, 50, 1);
        assert!(!e.tunes().is_empty(), "no tuning decision was taken");
        // All data still readable.
        assert_eq!(e.engine().metrics().user_points, 2000);
        let all = e.engine().scan_all().expect("scan");
        assert_eq!(all.len(), 2000);
    }

    #[test]
    fn drift_triggers_retune() {
        let mut e = small_engine();
        let calm = LogNormal::new(2.0, 0.5);
        let wild = LogNormal::new(6.0, 2.0);
        let next = write_workload(&mut e, &calm, 3000, 0, 50, 2);
        let tunes_before = e.tunes().len();
        assert!(tunes_before >= 1);
        write_workload(&mut e, &wild, 6000, next, 50, 3);
        assert!(
            e.tunes().len() > tunes_before,
            "drift did not trigger a re-tune: {:?}",
            e.tunes()
        );
    }

    #[test]
    fn retune_without_samples_is_a_no_op() {
        let mut e = small_engine();
        e.retune().expect("retune");
        assert!(e.tunes().is_empty());
    }

    #[test]
    fn data_survives_policy_switches() {
        let cfg = small_config().with_hysteresis(256); // frequent switching
        let mut e = OpenOptions::new(
            EngineConfig::new(Policy::conventional(64)).with_sstable_points(32),
        )
        .adaptive(cfg)
        .expect("engine");
        let calm = LogNormal::new(2.0, 0.5);
        let wild = LogNormal::new(6.5, 2.0);
        let mut next = 0i64;
        for round in 0..4 {
            let dist: &dyn DelayDistribution =
                if round % 2 == 0 { &calm } else { &wild };
            next = write_workload(&mut e, dist, 1500, next, 50, round as u64);
        }
        let all = e.engine().scan_all().expect("scan");
        assert_eq!(all.len(), 6000);
        assert!(all.windows(2).all(|w| w[0].gen_time < w[1].gen_time));
    }
}
