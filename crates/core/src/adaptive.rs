//! `π_adaptive`: the self-tuning engine (paper Figs. 10, 17; §VI).
//!
//! [`AdaptiveEngine`] glues the pieces together the way the deployed IoTDB
//! analyzer module does:
//!
//! 1. every written point is fed to the storage engine *and* to the
//!    [`DelayAnalyzer`];
//! 2. when the analyzer reports that the delay distribution changed (or that
//!    enough samples exist for a first decision), the engine fits the
//!    empirical delay distribution, runs Algorithm 1, and switches the
//!    engine's buffering policy to the winner.
//!
//! Policy switches re-route the buffered points without touching the disk
//! (see [`LsmEngine::set_policy`]).

use std::sync::Arc;

use seplsm_dist::DelayDistribution;
use seplsm_lsm::{EngineConfig, LsmEngine, MemStore, TableStore};
use seplsm_types::{DataPoint, Policy, Result};

use crate::analyzer::{AnalyzerConfig, AnalyzerEvent, DelayAnalyzer};
use crate::tuner::{tune, TunerOptions};
use crate::wa::WaModel;
use crate::zeta::ZetaConfig;

/// Configuration of the adaptive controller.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Total memory budget `n` (points) — split is the tuner's business.
    pub budget: usize,
    /// SSTable target size (points).
    pub sstable_points: usize,
    /// Record a WA snapshot every this many user points (`None` = off).
    pub wa_snapshot_every: Option<u64>,
    /// Analyzer (drift-detection) parameters.
    pub analyzer: AnalyzerConfig,
    /// Tuning-scan options.
    pub tuner: TunerOptions,
    /// ζ evaluation parameters used for online tuning.
    pub zeta: ZetaConfig,
    /// Minimum user points between two policy switches (hysteresis).
    pub min_points_between_tunes: u64,
}

impl AdaptiveConfig {
    /// Sensible defaults for budget `n`: online tuner granularity, cheap ζ,
    /// re-tune at most every `4 × analyzer window` points.
    pub fn new(budget: usize) -> Self {
        let analyzer = AnalyzerConfig::default();
        Self {
            budget,
            sstable_points: EngineConfig::DEFAULT_SSTABLE_POINTS,
            wa_snapshot_every: None,
            analyzer,
            tuner: TunerOptions::online(budget),
            zeta: ZetaConfig::online(),
            min_points_between_tunes: (analyzer.window as u64) * 4,
        }
    }

    /// Overrides the SSTable size.
    pub fn with_sstable_points(mut self, points: usize) -> Self {
        self.sstable_points = points;
        self
    }

    /// Enables WA snapshots.
    pub fn with_wa_snapshots(mut self, every: u64) -> Self {
        self.wa_snapshot_every = Some(every);
        self
    }

    /// Overrides the analyzer parameters (also refreshes the hysteresis).
    pub fn with_analyzer(mut self, analyzer: AnalyzerConfig) -> Self {
        self.analyzer = analyzer;
        self.min_points_between_tunes = (analyzer.window as u64) * 4;
        self
    }
}

/// One recorded tuning decision.
#[derive(Debug, Clone)]
pub struct TuneRecord {
    /// User points written when the decision was made.
    pub at_user_points: u64,
    /// Predicted WA under `π_c`.
    pub r_c: f64,
    /// Predicted minimum WA under `π_s`.
    pub r_s_star: f64,
    /// The adopted policy.
    pub decision: Policy,
    /// Estimated generation interval used for the models.
    pub delta_t: f64,
}

/// A storage engine that re-tunes its buffering policy as delays drift.
pub struct AdaptiveEngine {
    engine: LsmEngine,
    analyzer: DelayAnalyzer,
    config: AdaptiveConfig,
    tunes: Vec<TuneRecord>,
    last_tune_at: u64,
}

impl AdaptiveEngine {
    /// Creates an adaptive engine starting under `π_c` (the paper
    /// initialises the system with the conventional policy).
    ///
    /// # Errors
    /// Invalid configuration.
    pub fn new(
        config: AdaptiveConfig,
        store: Arc<dyn TableStore>,
    ) -> Result<Self> {
        let mut engine_config = EngineConfig::conventional(config.budget)
            .with_sstable_points(config.sstable_points);
        if let Some(every) = config.wa_snapshot_every {
            engine_config = engine_config.with_wa_snapshots(every);
        }
        Ok(Self {
            engine: LsmEngine::new(engine_config, store)?,
            analyzer: DelayAnalyzer::new(config.analyzer),
            config,
            tunes: Vec::new(),
            last_tune_at: 0,
        })
    }

    /// In-memory-store convenience constructor.
    pub fn in_memory(config: AdaptiveConfig) -> Result<Self> {
        Self::new(config, Arc::new(MemStore::new()))
    }

    /// The wrapped storage engine.
    pub fn engine(&self) -> &LsmEngine {
        &self.engine
    }

    /// Mutable access to the wrapped engine (queries, flushes).
    pub fn engine_mut(&mut self) -> &mut LsmEngine {
        &mut self.engine
    }

    /// The currently active policy.
    pub fn policy(&self) -> Policy {
        self.engine.policy()
    }

    /// Every tuning decision taken so far.
    pub fn tunes(&self) -> &[TuneRecord] {
        &self.tunes
    }

    /// Writes one point, re-tuning the policy when the analyzer asks for it.
    ///
    /// # Errors
    /// Storage failures; tuner failures are swallowed (the current policy
    /// simply stays in force) because an analyzer must never take down the
    /// write path.
    pub fn append(&mut self, p: DataPoint) -> Result<()> {
        self.engine.append(p)?;
        let event = self.analyzer.observe(&p);
        let due = match event {
            AnalyzerEvent::None => false,
            AnalyzerEvent::NeedsInitialTune => true,
            AnalyzerEvent::DriftDetected => {
                self.engine.metrics().user_points
                    >= self.last_tune_at + self.config.min_points_between_tunes
            }
        };
        if due {
            self.retune()?;
        }
        Ok(())
    }

    /// Runs Algorithm 1 on the analyzer's current window and applies the
    /// decision. Exposed for callers that schedule tuning themselves.
    ///
    /// # Errors
    /// Storage failures while switching policies.
    pub fn retune(&mut self) -> Result<()> {
        let Some(dist) = self.analyzer.build_distribution() else {
            return Ok(());
        };
        let Some(delta_t) = self.analyzer.estimated_delta_t() else {
            return Ok(());
        };
        let model = WaModel::with_zeta_config(
            Arc::new(dist) as Arc<dyn DelayDistribution>,
            delta_t,
            self.config.budget,
            self.config.zeta,
        );
        let outcome = match tune(&model, self.config.tuner) {
            Ok(o) => o,
            // A failed model evaluation must not break ingestion.
            Err(_) => return Ok(()),
        };
        self.engine.set_policy(outcome.decision)?;
        self.analyzer.mark_tuned();
        self.last_tune_at = self.engine.metrics().user_points;
        self.tunes.push(TuneRecord {
            at_user_points: self.last_tune_at,
            r_c: outcome.r_c,
            r_s_star: outcome.r_s_star,
            decision: outcome.decision,
            delta_t,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seplsm_dist::{DelayDistribution, LogNormal};

    fn small_config() -> AdaptiveConfig {
        AdaptiveConfig::new(64)
            .with_sstable_points(32)
            .with_analyzer(AnalyzerConfig {
                window: 512,
                min_samples: 256,
                check_every: 128,
                ks_alpha: 0.01,
            })
    }

    fn write_workload(
        engine: &mut AdaptiveEngine,
        dist: &dyn DelayDistribution,
        n: usize,
        start_tg: i64,
        dt: i64,
        seed: u64,
    ) -> i64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // Points generated on a grid, arriving in arrival-time order within
        // a small reorder buffer (enough realism for the analyzer).
        let mut pts: Vec<DataPoint> = (0..n)
            .map(|i| {
                let tg = start_tg + i as i64 * dt;
                DataPoint::with_delay(tg, dist.sample(&mut rng) as i64, 0.0)
            })
            .collect();
        pts.sort_by_key(|p| p.arrival_time);
        for p in &pts {
            engine.append(*p).expect("append");
        }
        start_tg + n as i64 * dt
    }

    #[test]
    fn starts_conventional_then_tunes_once_samples_accumulate() {
        let mut e = AdaptiveEngine::in_memory(small_config()).expect("engine");
        assert!(!e.policy().is_separation());
        let dist = LogNormal::new(5.0, 2.0);
        write_workload(&mut e, &dist, 2000, 0, 50, 1);
        assert!(!e.tunes().is_empty(), "no tuning decision was taken");
        // All data still readable.
        assert_eq!(e.engine().metrics().user_points, 2000);
        let all = e.engine().scan_all().expect("scan");
        assert_eq!(all.len(), 2000);
    }

    #[test]
    fn drift_triggers_retune() {
        let mut e = AdaptiveEngine::in_memory(small_config()).expect("engine");
        let calm = LogNormal::new(2.0, 0.5);
        let wild = LogNormal::new(6.0, 2.0);
        let next = write_workload(&mut e, &calm, 3000, 0, 50, 2);
        let tunes_before = e.tunes().len();
        assert!(tunes_before >= 1);
        write_workload(&mut e, &wild, 6000, next, 50, 3);
        assert!(
            e.tunes().len() > tunes_before,
            "drift did not trigger a re-tune: {:?}",
            e.tunes()
        );
    }

    #[test]
    fn retune_without_samples_is_a_no_op() {
        let mut e = AdaptiveEngine::in_memory(small_config()).expect("engine");
        e.retune().expect("retune");
        assert!(e.tunes().is_empty());
    }

    #[test]
    fn data_survives_policy_switches() {
        let mut cfg = small_config();
        cfg.min_points_between_tunes = 256; // allow frequent switching
        let mut e = AdaptiveEngine::in_memory(cfg).expect("engine");
        let calm = LogNormal::new(2.0, 0.5);
        let wild = LogNormal::new(6.5, 2.0);
        let mut next = 0i64;
        for round in 0..4 {
            let dist: &dyn DelayDistribution =
                if round % 2 == 0 { &calm } else { &wild };
            next = write_workload(&mut e, dist, 1500, next, 50, round as u64);
        }
        let all = e.engine().scan_all().expect("scan");
        assert_eq!(all.len(), 6000);
        assert!(all.windows(2).all(|w| w[0].gen_time < w[1].gen_time));
    }
}
