//! The write-amplification models `r_c` (Eq. 3) and `r_s(n_seq)` (Eq. 5).
//!
//! Given the delay distribution, the generation interval `Δt`, and the memory
//! budget `n`, [`WaModel`] predicts:
//!
//! * `r_c = ζ(n)/n + 1` — WA under the conventional policy;
//! * `r_s(n_seq)` — WA under the separation policy with in-order capacity
//!   `n_seq`, derived from one *phase* (one fill/merge cycle of `C_nonseq`):
//!
//! ```text
//! N_arrive(n_seq) = n_seq·(n−n_seq)/g(n_seq) + (n−n_seq)          (Eq. 4)
//! n'_seq          = (1 + n_nonseq/g − ⌈n_nonseq/g⌉)·n_seq
//! r_s(n_seq)      = ζ(N_arrive)/N_arrive + 1
//!                   + (n − n_seq + n'_seq)/N_arrive               (Eq. 5)
//! ```
//!
//! `n'_seq` is the expected number of in-order points still buffered in
//! `C_seq` when the phase ends — they are not yet on disk, so the phase's
//! merge does not rewrite them.

use std::sync::Arc;

use seplsm_dist::DelayDistribution;
use seplsm_types::Result;

use crate::arrival::ArrivalRatioModel;
use crate::zeta::{ZetaConfig, ZetaModel};

/// Combined WA model for one workload (delay law + `Δt`) and budget `n`.
pub struct WaModel {
    zeta: ZetaModel,
    g: ArrivalRatioModel,
    n: usize,
}

/// Breakdown of one `r_s(n_seq)` evaluation, for inspection and plotting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeparationEstimate {
    /// The evaluated in-order capacity.
    pub n_seq: usize,
    /// Expected out-of-order arrivals per `C_seq` fill, `g(n_seq)`.
    pub g: f64,
    /// Total arrivals per phase, `N_arrive(n_seq)` (Eq. 4).
    pub n_arrive: f64,
    /// Expected residual `C_seq` content at phase end, `n'_seq`.
    pub n_seq_prime: f64,
    /// Predicted write amplification `r_s(n_seq)` (Eq. 5).
    pub wa: f64,
}

impl WaModel {
    /// Builds the model for delay law `dist`, generation interval `delta_t`
    /// and memory budget `n` (points).
    pub fn new(
        dist: Arc<dyn DelayDistribution>,
        delta_t: f64,
        n: usize,
    ) -> Self {
        Self::with_zeta_config(dist, delta_t, n, ZetaConfig::default())
    }

    /// Same with explicit ζ evaluation parameters.
    pub fn with_zeta_config(
        dist: Arc<dyn DelayDistribution>,
        delta_t: f64,
        n: usize,
        config: ZetaConfig,
    ) -> Self {
        assert!(
            n >= 2,
            "memory budget must allow a separation split (n >= 2)"
        );
        Self {
            zeta: ZetaModel::with_config(dist.clone(), delta_t, config),
            g: ArrivalRatioModel::new(dist, delta_t),
            n,
        }
    }

    /// The memory budget `n`.
    pub fn budget(&self) -> usize {
        self.n
    }

    /// The underlying ζ evaluator.
    pub fn zeta(&self) -> &ZetaModel {
        &self.zeta
    }

    /// The underlying arrival-ratio evaluator.
    pub fn arrival(&self) -> &ArrivalRatioModel {
        &self.g
    }

    /// `r_c`: predicted WA under `π_c` with budget `n` (Eq. 3).
    pub fn wa_conventional(&self) -> f64 {
        self.zeta.wa_conventional(self.n)
    }

    /// `r_s(n_seq)`: predicted WA under `π_s` (Eq. 5), with the full
    /// breakdown.
    ///
    /// # Errors
    /// [`seplsm_types::Error::Model`] when the arrival-ratio solve exceeds
    /// its cap (pathological delay laws).
    pub fn wa_separation(&self, n_seq: usize) -> Result<SeparationEstimate> {
        assert!(
            n_seq >= 1 && n_seq < self.n,
            "n_seq must satisfy 0 < n_seq < n (got {n_seq}, n={})",
            self.n
        );
        let n_nonseq = (self.n - n_seq) as f64;
        let g = self.g.g(n_seq as f64)?;
        if g <= f64::EPSILON {
            // No out-of-order arrivals: phases never end, C_seq handles
            // everything with plain flushes — WA is exactly 1.
            return Ok(SeparationEstimate {
                n_seq,
                g,
                n_arrive: f64::INFINITY,
                n_seq_prime: 0.0,
                wa: 1.0,
            });
        }
        let fills = n_nonseq / g; // C_seq fill count per phase
        let n_arrive = n_seq as f64 * fills + n_nonseq; // Eq. 4
        let n_seq_prime = (1.0 + fills - fills.ceil()) * n_seq as f64;
        let wa = self.zeta.zeta_real(n_arrive) / n_arrive
            + 1.0
            + (n_nonseq + n_seq_prime) / n_arrive; // Eq. 5
        Ok(SeparationEstimate {
            n_seq,
            g,
            n_arrive,
            n_seq_prime,
            wa,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seplsm_dist::{Constant, LogNormal};

    fn model(mu: f64, sigma: f64, dt: f64, n: usize) -> WaModel {
        WaModel::new(Arc::new(LogNormal::new(mu, sigma)), dt, n)
    }

    #[test]
    fn in_order_workload_gives_wa_one_under_both_policies() {
        let m = WaModel::new(Arc::new(Constant::new(0.0)), 50.0, 512);
        assert!((m.wa_conventional() - 1.0).abs() < 1e-12);
        let est = m.wa_separation(256).expect("estimate");
        assert_eq!(est.wa, 1.0);
        assert_eq!(est.g, 0.0);
    }

    #[test]
    fn estimates_are_at_least_one() {
        let m = model(5.0, 2.0, 50.0, 512);
        assert!(m.wa_conventional() >= 1.0);
        for n_seq in [1usize, 64, 256, 448, 511] {
            let est = m.wa_separation(n_seq).expect("estimate");
            assert!(est.wa >= 1.0, "r_s({n_seq}) = {} < 1", est.wa);
            assert!(est.n_arrive > 0.0);
        }
    }

    #[test]
    fn n_arrive_matches_eq4() {
        let m = model(5.0, 2.0, 50.0, 512);
        let est = m.wa_separation(256).expect("estimate");
        let expected = 256.0 * 256.0 / est.g + 256.0;
        assert!((est.n_arrive - expected).abs() < 1e-9);
    }

    #[test]
    fn n_seq_prime_is_a_fraction_of_n_seq() {
        let m = model(5.0, 2.0, 50.0, 512);
        for n_seq in [50usize, 200, 400] {
            let est = m.wa_separation(n_seq).expect("estimate");
            assert!(
                est.n_seq_prime > 0.0 && est.n_seq_prime <= n_seq as f64 + 1e-9,
                "n'_seq({n_seq}) = {}",
                est.n_seq_prime
            );
        }
    }

    #[test]
    fn severe_disorder_produces_u_shaped_rs_curve() {
        // The paper's Fig. 9 (M12): with severe disorder the r_s(n_seq) curve
        // is U-shaped — both extremes are worse than the interior.
        let m = model(5.0, 2.0, 10.0, 512);
        let edge_lo = m.wa_separation(8).expect("lo").wa;
        let edge_hi = m.wa_separation(504).expect("hi").wa;
        let mid = m.wa_separation(256).expect("mid").wa;
        assert!(mid < edge_hi, "mid {mid} vs high edge {edge_hi}");
        // The low edge may or may not dominate mid depending on parameters,
        // but the curve must not be flat.
        assert!((edge_lo - mid).abs() > 1e-6 || (edge_hi - mid).abs() > 1e-6);
    }

    #[test]
    fn mild_disorder_favors_conventional() {
        // Few, short delays: compactions are rare under pi_c, while pi_s
        // still pays its per-phase overhead (the Fig. 2 scenario).
        let m = model(2.0, 0.5, 50.0, 512); // delays ~7ms << Δt
        let rc = m.wa_conventional();
        assert!(rc < 1.05, "r_c={rc}");
        let best_rs = (1..512)
            .step_by(32)
            .map(|s| m.wa_separation(s).expect("rs").wa)
            .fold(f64::INFINITY, f64::min);
        assert!(rc <= best_rs + 0.05, "rc={rc}, best rs={best_rs}");
    }

    #[test]
    #[should_panic(expected = "n_seq must satisfy")]
    fn rejects_out_of_range_n_seq() {
        let m = model(4.0, 1.5, 50.0, 64);
        let _ = m.wa_separation(64);
    }
}
