//! Buffering policies (`π_c`, `π_s`) and generation-time ranges.

use crate::{Error, Result, Timestamp};

/// A buffering policy for the leveled LSM engine.
///
/// The paper compares two policies for a fixed memory budget of `n` points:
///
/// * [`Policy::Conventional`] (`π_c`): one MemTable `C0` of capacity `n`;
///   filling it triggers a merge-compaction with all overlapping SSTables.
/// * [`Policy::Separation`] (`π_s(n_seq)`): an in-order MemTable `C_seq` of
///   capacity `n_seq` that flushes without rewriting on-disk data, and an
///   out-of-order MemTable `C_nonseq` of capacity `n_nonseq = n − n_seq`
///   whose filling triggers the merge-compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// `π_c`: a single MemTable of the given capacity (in points).
    Conventional {
        /// Capacity `n` of `C0`, in points.
        capacity: usize,
    },
    /// `π_s(n_seq)`: separate in-order / out-of-order MemTables.
    Separation {
        /// Capacity `n_seq` of the in-order MemTable `C_seq`, in points.
        seq_capacity: usize,
        /// Capacity `n_nonseq` of the out-of-order MemTable `C_nonseq`.
        nonseq_capacity: usize,
    },
}

impl Policy {
    /// `π_c` with memory budget `n`.
    pub fn conventional(n: usize) -> Self {
        Policy::Conventional { capacity: n }
    }

    /// `π_s(n_seq)` under total budget `n`: `C_seq` holds `n_seq` points and
    /// `C_nonseq` the remaining `n − n_seq`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] unless `0 < n_seq < n`.
    pub fn separation(n: usize, n_seq: usize) -> Result<Self> {
        if n_seq == 0 || n_seq >= n {
            return Err(Error::InvalidConfig(format!(
                "separation policy requires 0 < n_seq < n, got n_seq={n_seq}, n={n}"
            )));
        }
        Ok(Policy::Separation {
            seq_capacity: n_seq,
            nonseq_capacity: n - n_seq,
        })
    }

    /// The even split `π_s(n/2)` used as the untuned default in Apache IoTDB
    /// (the `π_s(½n)` baseline of the paper's Fig. 10).
    pub fn separation_even(n: usize) -> Result<Self> {
        Self::separation(n, n / 2)
    }

    /// Total memory budget in points (`n`).
    pub fn total_capacity(&self) -> usize {
        match *self {
            Policy::Conventional { capacity } => capacity,
            Policy::Separation {
                seq_capacity,
                nonseq_capacity,
            } => seq_capacity + nonseq_capacity,
        }
    }

    /// The same policy shape scaled to a new total budget: `π_c(n)`
    /// becomes `π_c(new_total)`, and `π_s(n_seq)` keeps its split ratio
    /// (`n_seq' = new_total · n_seq / n`, clamped so both MemTables stay
    /// non-empty). The fleet memory arbiter uses this to grow or shrink
    /// a series' buffers without disturbing its tuned split.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when `new_total` is zero, or
    /// below 2 for a separation policy (which needs one point on each
    /// side of the split).
    pub fn resized(&self, new_total: usize) -> Result<Self> {
        match *self {
            Policy::Conventional { .. } => {
                if new_total == 0 {
                    return Err(Error::InvalidConfig(
                        "resized policy needs a non-zero budget".into(),
                    ));
                }
                Ok(Policy::Conventional {
                    capacity: new_total,
                })
            }
            Policy::Separation { seq_capacity, .. } => {
                if new_total < 2 {
                    return Err(Error::InvalidConfig(format!(
                        "separation policy cannot fit in {new_total} \
                         points (needs >= 2)"
                    )));
                }
                let total = self.total_capacity();
                let scaled = new_total * seq_capacity / total;
                let n_seq = scaled.clamp(1, new_total - 1);
                Self::separation(new_total, n_seq)
            }
        }
    }

    /// `true` for `π_s`.
    pub fn is_separation(&self) -> bool {
        matches!(self, Policy::Separation { .. })
    }

    /// Human-readable name matching the paper's notation.
    pub fn name(&self) -> String {
        match *self {
            Policy::Conventional { capacity } => format!("pi_c(n={capacity})"),
            Policy::Separation {
                seq_capacity,
                nonseq_capacity,
            } => {
                format!(
                    "pi_s(n_seq={seq_capacity}, n_nonseq={nonseq_capacity})"
                )
            }
        }
    }
}

/// A closed interval `[start, end]` of generation timestamps.
///
/// Used for SSTable key ranges (each SSTable covers the generation-time range
/// of the points it stores) and for range-query predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    /// Earliest generation time in the range (inclusive).
    pub start: Timestamp,
    /// Latest generation time in the range (inclusive).
    pub end: Timestamp,
}

impl TimeRange {
    /// Creates `[start, end]`; `start` must not exceed `end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        debug_assert!(start <= end, "TimeRange start {start} > end {end}");
        Self { start, end }
    }

    /// `true` if `t ∈ [start, end]`.
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// `true` if the two closed intervals intersect.
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Length of the interval in milliseconds (`end − start`).
    pub fn span(&self) -> i64 {
        self.end - self.start
    }

    /// Smallest range covering both intervals.
    pub fn union(&self, other: &TimeRange) -> TimeRange {
        TimeRange::new(self.start.min(other.start), self.end.max(other.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separation_rejects_degenerate_splits() {
        assert!(Policy::separation(512, 0).is_err());
        assert!(Policy::separation(512, 512).is_err());
        assert!(Policy::separation(512, 600).is_err());
        assert!(Policy::separation(512, 256).is_ok());
    }

    #[test]
    fn separation_even_splits_budget() {
        let p = Policy::separation_even(512).unwrap();
        assert_eq!(
            p,
            Policy::Separation {
                seq_capacity: 256,
                nonseq_capacity: 256
            }
        );
        assert_eq!(p.total_capacity(), 512);
    }

    #[test]
    fn total_capacity_is_budget_n() {
        assert_eq!(Policy::conventional(512).total_capacity(), 512);
        assert_eq!(Policy::separation(512, 100).unwrap().total_capacity(), 512);
    }

    #[test]
    fn resized_preserves_shape_and_ratio() {
        let c = Policy::conventional(64).resized(128).unwrap();
        assert_eq!(c, Policy::conventional(128));
        let s = Policy::separation(64, 16).unwrap().resized(128).unwrap();
        assert_eq!(s, Policy::separation(128, 32).unwrap());
        // Shrinking clamps so both MemTables stay non-empty.
        let tiny = Policy::separation(64, 1).unwrap().resized(2).unwrap();
        assert_eq!(tiny, Policy::separation(2, 1).unwrap());
        let top = Policy::separation(64, 63).unwrap().resized(4).unwrap();
        assert_eq!(top, Policy::separation(4, 3).unwrap());
        assert!(Policy::conventional(8).resized(0).is_err());
        assert!(Policy::separation(8, 4).unwrap().resized(1).is_err());
    }

    #[test]
    fn policy_names_follow_paper_notation() {
        assert_eq!(Policy::conventional(8).name(), "pi_c(n=8)");
        assert_eq!(
            Policy::separation(8, 3).unwrap().name(),
            "pi_s(n_seq=3, n_nonseq=5)"
        );
    }

    #[test]
    fn range_overlap_is_symmetric_and_closed() {
        let a = TimeRange::new(0, 10);
        let b = TimeRange::new(10, 20);
        let c = TimeRange::new(11, 20);
        assert!(a.overlaps(&b) && b.overlaps(&a)); // closed: touching counts
        assert!(!a.overlaps(&c) && !c.overlaps(&a));
    }

    #[test]
    fn range_contains_endpoints() {
        let r = TimeRange::new(5, 7);
        assert!(
            r.contains(5) && r.contains(7) && !r.contains(8) && !r.contains(4)
        );
    }

    #[test]
    fn range_union_covers_both() {
        let r = TimeRange::new(0, 4).union(&TimeRange::new(10, 12));
        assert_eq!(r, TimeRange::new(0, 12));
        assert_eq!(r.span(), 12);
    }
}
