//! The shared error type of the workspace.

use std::fmt;

/// Errors produced by the seplsm crates.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O failure (on-disk table store, WAL).
    Io(std::io::Error),
    /// On-disk data failed validation (bad magic, checksum mismatch,
    /// truncated file, or out-of-order records inside an SSTable).
    Corrupt(String),
    /// A configuration value is out of its legal domain.
    InvalidConfig(String),
    /// A model evaluation could not be completed (e.g. a distribution too
    /// heavy-tailed for the arrival-ratio model's cap).
    Model(String),
    /// The engine has entered a degraded read-only state (e.g. a background
    /// worker exhausted its write retries); reads still work, writes are
    /// rejected with this error instead of panicking or blocking.
    Degraded(String),
    /// A fleet operation addressed a series id that the collection does not
    /// host. Carries the raw numeric id (the `SeriesId` newtype lives in
    /// the storage crate, which depends on this one).
    UnknownSeries(u32),
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Error::InvalidConfig(msg) => {
                write!(f, "invalid configuration: {msg}")
            }
            Error::Model(msg) => write!(f, "model error: {msg}"),
            Error::Degraded(msg) => {
                write!(f, "engine degraded (read-only): {msg}")
            }
            Error::UnknownSeries(id) => {
                write!(f, "unknown series-{id}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        let e = Error::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn degraded_is_typed_and_displayable() {
        let e = Error::Degraded("flush retries exhausted".into());
        assert!(e.to_string().contains("read-only"));
        assert!(e.to_string().contains("flush retries exhausted"));
        assert!(matches!(e, Error::Degraded(_)));
    }

    #[test]
    fn unknown_series_is_typed_and_displayable() {
        let e = Error::UnknownSeries(7);
        assert_eq!(e.to_string(), "unknown series-7");
        assert!(matches!(e, Error::UnknownSeries(7)));
    }

    #[test]
    fn io_errors_convert_and_expose_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
