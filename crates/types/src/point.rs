//! Time-series data points (paper §II, Definition 1–2).

/// A timestamp in milliseconds.
///
/// Both generation time and arrival time use this unit. The paper works with
/// abstract time units; all of its parameter settings (Δt = 50, delays drawn
/// from lognormal distributions, the 5×10⁴ ms re-send period of dataset `H`)
/// are expressed in milliseconds here.
pub type Timestamp = i64;

/// A time-series data point: the triple `p = ⟨t_g, t_a, v⟩` of Definition 1.
///
/// * `gen_time` (`t_g`) — when the point was generated at the device. Unique
///   within a series; identifies the point.
/// * `arrival_time` (`t_a`) — when the point arrived at the database.
/// * `value` (`v`) — the measurement payload.
///
/// The *delay* of a point (Definition 2) is `t_a − t_g`; see
/// [`DataPoint::delay`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataPoint {
    /// Generation timestamp `t_g` (ms). Unique per series.
    pub gen_time: Timestamp,
    /// Arrival timestamp `t_a` (ms).
    pub arrival_time: Timestamp,
    /// Carried value `v`.
    pub value: f64,
}

impl DataPoint {
    /// Creates a data point from its generation time, arrival time and value.
    pub fn new(
        gen_time: Timestamp,
        arrival_time: Timestamp,
        value: f64,
    ) -> Self {
        Self {
            gen_time,
            arrival_time,
            value,
        }
    }

    /// Creates a point from its generation time and *delay* (`t_a = t_g + d`).
    pub fn with_delay(
        gen_time: Timestamp,
        delay: Timestamp,
        value: f64,
    ) -> Self {
        Self {
            gen_time,
            arrival_time: gen_time + delay,
            value,
        }
    }

    /// The transmission delay `t_d = t_a − t_g` of Definition 2.
    ///
    /// Non-negative for physically plausible workloads, but the type does not
    /// enforce it: clock skew can produce negative delays and the models must
    /// tolerate them.
    pub fn delay(&self) -> Timestamp {
        self.arrival_time - self.gen_time
    }
}

/// Ordering by generation time, which is the sort key on disk.
///
/// `Eq`/`Ord` are implemented manually because `value: f64` is not `Eq`;
/// points compare by `(gen_time, arrival_time)` and ignore the value, which is
/// safe because generation timestamps are unique within a series.
impl Eq for DataPoint {}

impl PartialOrd for DataPoint {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DataPoint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.gen_time, self.arrival_time)
            .cmp(&(other.gen_time, other.arrival_time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_arrival_minus_generation() {
        let p = DataPoint::new(100, 175, 1.0);
        assert_eq!(p.delay(), 75);
    }

    #[test]
    fn with_delay_round_trips() {
        let p = DataPoint::with_delay(1_000, 250, 3.5);
        assert_eq!(p.arrival_time, 1_250);
        assert_eq!(p.delay(), 250);
    }

    #[test]
    fn negative_delay_is_representable() {
        // Clock skew can make a point "arrive" before it was generated.
        let p = DataPoint::new(100, 80, 0.0);
        assert_eq!(p.delay(), -20);
    }

    #[test]
    fn ordering_is_by_generation_time() {
        let early = DataPoint::new(10, 500, 0.0);
        let late = DataPoint::new(20, 30, 0.0);
        assert!(early < late);
        let mut v = [late, early];
        v.sort();
        assert_eq!(v[0].gen_time, 10);
    }

    #[test]
    fn ordering_ties_break_on_arrival_time() {
        let a = DataPoint::new(10, 11, 1.0);
        let b = DataPoint::new(10, 12, 2.0);
        assert!(a < b);
    }
}
