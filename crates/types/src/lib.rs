//! Shared vocabulary types for the `seplsm` workspace.
//!
//! This crate defines the data model used across the storage engine
//! (`seplsm-lsm`), the write-amplification models (`seplsm-core`) and the
//! workload generators (`seplsm-workload`):
//!
//! * [`DataPoint`] — the time-series data point of the paper's Definition 1:
//!   a `(generation time, arrival time, value)` triple.
//! * [`TimeRange`] — closed intervals over generation time, used for SSTable
//!   key ranges and range queries.
//! * [`Policy`] — the two buffering policies compared by the paper: the
//!   conventional single-MemTable policy `π_c` and the separation policy
//!   `π_s(n_seq)`.
//! * [`Error`] / [`Result`] — the shared error type.
//!
//! Timestamps are `i64` milliseconds ([`Timestamp`]); generation timestamps
//! are unique within a series and identify a point (paper §II).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod point;
pub mod policy;

pub use error::{Error, Result};
pub use point::{DataPoint, Timestamp};
pub use policy::{Policy, TimeRange};
