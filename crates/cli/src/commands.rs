//! The CLI subcommands.

use std::path::PathBuf;
use std::sync::Arc;

use seplsm_core::{tune, AdaptiveConfig, AdaptiveOpen, TunerOptions, WaModel};
use seplsm_dist::stats::percentile_sorted;
use seplsm_dist::{DelayDistribution, Empirical};
use seplsm_lsm::{
    AggregateSink, BlockCache, EngineConfig, FanoutSink, FileStore, JsonlSink,
    MemStore, Observer, OpenOptions, TableStore,
};
use seplsm_types::{DataPoint, Error, Policy, Result, TimeRange};
use seplsm_workload::{paper_dataset, S9Workload, VehicleWorkload};

use crate::csvio;
use crate::opts::Opts;

/// Top-level usage text.
pub const USAGE: &str = "\
seplsm — out-of-order time-series LSM toolkit

USAGE:
  seplsm generate --dataset <M1..M12|s9|vehicle> [--points N] [--seed S] --out FILE
  seplsm analyze  --input FILE [--budget N]
  seplsm ingest   --input FILE [--policy conventional|separation:<n_seq>|adaptive]
                  [--budget N] [--sstable N] [--dir DIR] [--compressed]
  seplsm query    --dir DIR --start T --end T [--budget N]
                  [--agg min|max|sum|count|mean [--bucket N]]
  seplsm stats    --input FILE [--policy conventional|separation:<n_seq>]
                  [--budget N] [--sstable N] [--trace FILE.jsonl]
                  [--cache POINTS]
  seplsm help
";

fn io_err(e: String) -> Error {
    Error::InvalidConfig(e)
}

/// `seplsm generate` — write a dataset as CSV.
pub fn generate(opts: &Opts) -> Result<()> {
    let dataset = opts.require("dataset").map_err(io_err)?;
    let out = PathBuf::from(opts.require("out").map_err(io_err)?);
    let points: usize = opts.get_or("points", 100_000);
    let seed: u64 = opts.get_or("seed", 1);

    let data = match dataset.to_ascii_lowercase().as_str() {
        "s9" | "s-9" => S9Workload::new(points, seed).generate(),
        "vehicle" | "h" => VehicleWorkload::new(points, seed).generate(),
        name => paper_dataset(name)
            .ok_or_else(|| {
                Error::InvalidConfig(format!(
                    "unknown dataset `{name}` (expected M1..M12, s9 or vehicle)"
                ))
            })?
            .workload(points, seed)
            .generate(),
    };
    csvio::write_csv(&out, &data)?;
    println!("wrote {} points to {}", data.len(), out.display());
    Ok(())
}

fn load_input(opts: &Opts) -> Result<Vec<DataPoint>> {
    let input = opts.require("input").map_err(io_err)?;
    let points = csvio::read_csv(input)?;
    if points.is_empty() {
        return Err(Error::InvalidConfig(format!("{input} holds no points")));
    }
    Ok(points)
}

fn estimate_delta_t(points: &[DataPoint]) -> Result<f64> {
    let mut gen_times: Vec<i64> = points.iter().map(|p| p.gen_time).collect();
    gen_times.sort_unstable();
    let mut gaps: Vec<i64> = gen_times
        .windows(2)
        .map(|w| w[1] - w[0])
        .filter(|&g| g > 0)
        .collect();
    gaps.sort_unstable();
    gaps.get(gaps.len() / 2).map(|&g| g as f64).ok_or_else(|| {
        Error::Model("dataset too small to estimate delta_t".into())
    })
}

/// `seplsm analyze` — delay profile + Algorithm 1 recommendation.
pub fn analyze(opts: &Opts) -> Result<()> {
    let points = load_input(opts)?;
    let budget: usize = opts.get_or("budget", 512);

    let mut delays: Vec<f64> =
        points.iter().map(|p| p.delay() as f64).collect();
    delays.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let ooo = seplsm_workload::fraction_out_of_order(&points);
    let delta_t = estimate_delta_t(&points)?;

    println!("points:            {}", points.len());
    println!("delta_t (median):  {delta_t} ms");
    println!("out-of-order:      {:.3}%", ooo * 100.0);
    println!(
        "delays:            p50 {:.0} ms, p95 {:.0} ms, p99 {:.0} ms, max {:.0} ms",
        percentile_sorted(&delays, 50.0),
        percentile_sorted(&delays, 95.0),
        percentile_sorted(&delays, 99.0),
        percentile_sorted(&delays, 100.0),
    );

    let dist = Arc::new(Empirical::from_samples(&delays))
        as Arc<dyn DelayDistribution>;
    let model = WaModel::new(dist, delta_t, budget);
    let outcome = tune(&model, TunerOptions::online(budget))?;
    println!("\nAlgorithm 1 (budget n = {budget}):");
    println!("  r_c        = {:.3}", outcome.r_c);
    println!(
        "  min r_s    = {:.3} at n_seq = {}",
        outcome.r_s_star, outcome.best_n_seq
    );
    println!("  decision   = {}", outcome.decision.name());
    Ok(())
}

fn parse_policy(spec: &str, budget: usize) -> Result<Option<Policy>> {
    match spec {
        "conventional" | "pi_c" => Ok(Some(Policy::conventional(budget))),
        "adaptive" => Ok(None),
        other => {
            if let Some(n_seq) = other.strip_prefix("separation:") {
                let n_seq: usize = n_seq.parse().map_err(|_| {
                    Error::InvalidConfig(format!("bad n_seq in `{other}`"))
                })?;
                Ok(Some(Policy::separation(budget, n_seq)?))
            } else if other == "separation" || other == "pi_s" {
                Ok(Some(Policy::separation_even(budget)?))
            } else {
                Err(Error::InvalidConfig(format!(
                    "unknown policy `{other}` \
                     (conventional | separation[:n_seq] | adaptive)"
                )))
            }
        }
    }
}

fn open_store(opts: &Opts) -> Result<Arc<dyn TableStore>> {
    let options = if opts.switch("compressed") {
        seplsm_lsm::EncodeOptions::compressed()
    } else {
        seplsm_lsm::EncodeOptions::default()
    };
    Ok(match opts.get("dir") {
        Some(dir) => Arc::new(FileStore::open_with(
            PathBuf::from(dir).join("tables"),
            options,
        )?),
        None => Arc::new(MemStore::with_options(options)),
    })
}

/// `seplsm ingest` — write a CSV through the engine and report WA.
pub fn ingest(opts: &Opts) -> Result<()> {
    let points = load_input(opts)?;
    let budget: usize = opts.get_or("budget", 512);
    let sstable: usize = opts.get_or("sstable", 512);
    let policy_spec = opts.get("policy").unwrap_or("conventional");
    let store = open_store(opts)?;

    match parse_policy(policy_spec, budget)? {
        Some(policy) => {
            let mut options = OpenOptions::new(
                EngineConfig::new(policy).with_sstable_points(sstable),
            )
            .store(store);
            if let Some(dir) = opts.get("dir") {
                options = options
                    .wal(PathBuf::from(dir).join("wal"))
                    .manifest(PathBuf::from(dir).join("manifest"));
            }
            let mut engine = options.open()?;
            for p in &points {
                engine.append(*p)?;
            }
            engine.flush_all()?;
            let m = engine.metrics();
            println!("policy:              {}", policy.name());
            println!("user points:         {}", m.user_points);
            println!("disk points written: {}", m.disk_points_written);
            println!("flushes/compactions: {}/{}", m.flushes, m.compactions);
            println!("write amplification: {:.3}", m.write_amplification());
        }
        None => {
            let mut engine = OpenOptions::new(
                EngineConfig::new(Policy::conventional(budget))
                    .with_sstable_points(sstable),
            )
            .store(store)
            .adaptive(AdaptiveConfig::new())?;
            for p in &points {
                engine.append(*p)?;
            }
            engine.engine_mut().flush_all()?;
            println!(
                "policy:              adaptive ({} tunes)",
                engine.tunes().len()
            );
            for t in engine.tunes() {
                println!(
                    "  at {:>9}: r_c={:.3} r_s*={:.3} -> {}",
                    t.at_user_points,
                    t.r_c,
                    t.r_s_star,
                    t.decision.name()
                );
            }
            let m = engine.engine().metrics();
            println!("write amplification: {:.3}", m.write_amplification());
        }
    }
    Ok(())
}

/// Which statistic `seplsm query --agg` reports out of the folded
/// min/max/sum/count quartet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AggStat {
    Min,
    Max,
    Sum,
    Count,
    Mean,
}

impl AggStat {
    fn parse(spec: &str) -> Result<Self> {
        match spec {
            "min" => Ok(Self::Min),
            "max" => Ok(Self::Max),
            "sum" => Ok(Self::Sum),
            "count" => Ok(Self::Count),
            "mean" | "avg" => Ok(Self::Mean),
            other => Err(Error::InvalidConfig(format!(
                "unknown aggregate `{other}` (min|max|sum|count|mean)"
            ))),
        }
    }

    fn render(self, agg: &seplsm_lsm::Agg) -> String {
        match self {
            Self::Min => agg.min.to_string(),
            Self::Max => agg.max.to_string(),
            Self::Sum => agg.sum.to_string(),
            Self::Count => agg.count.to_string(),
            Self::Mean => match agg.mean() {
                Some(mean) => mean.to_string(),
                None => "nan".into(),
            },
        }
    }
}

/// The stderr pushdown report shared by the aggregate and downsample arms
/// of `seplsm query --agg`.
fn report_pushdown(stats: &seplsm_lsm::QueryStats) {
    eprintln!(
        "{} of {} blocks folded from index pre-aggregates, {} decoded \
         ({} disk points scanned); {} tables read, {} pruned",
        stats.blocks_folded,
        stats.blocks_folded + stats.agg_fallback_blocks,
        stats.agg_fallback_blocks,
        stats.disk_points_scanned,
        stats.tables_read,
        stats.tables_pruned
    );
}

/// `seplsm query` — range query against a persisted store; with `--agg`,
/// an aggregation (or `--bucket`-windowed downsampling) pushdown instead.
pub fn query(opts: &Opts) -> Result<()> {
    let dir = PathBuf::from(opts.require("dir").map_err(io_err)?);
    let start: i64 =
        opts.require("start")
            .map_err(io_err)?
            .parse()
            .map_err(|_| {
                Error::InvalidConfig("--start must be an integer".into())
            })?;
    let end: i64 =
        opts.require("end").map_err(io_err)?.parse().map_err(|_| {
            Error::InvalidConfig("--end must be an integer".into())
        })?;
    if start > end {
        return Err(Error::InvalidConfig("--start must be <= --end".into()));
    }
    let budget: usize = opts.get_or("budget", 512);

    let store: Arc<dyn TableStore> =
        Arc::new(FileStore::open(dir.join("tables"))?);
    let mut options =
        OpenOptions::new(EngineConfig::new(Policy::conventional(budget)))
            .store(store);
    if dir.join("wal").exists() {
        options = options.wal(dir.join("wal"));
    }
    if dir.join("manifest").exists() {
        options = options.manifest(dir.join("manifest"));
    }
    let (engine, _report) = options.open_or_recover()?;
    let range = TimeRange::new(start, end);
    if let Some(spec) = opts.get("agg") {
        let stat = AggStat::parse(spec)?;
        if let Some(raw) = opts.get("bucket") {
            let width: i64 = raw.parse().map_err(|_| {
                Error::InvalidConfig(
                    "--bucket must be a positive integer".into(),
                )
            })?;
            let (buckets, stats) = engine.downsample(range, width)?;
            for (bucket, agg) in &buckets {
                println!("{},{}", bucket, stat.render(agg));
            }
            report_pushdown(&stats);
        } else {
            let (agg, stats) = engine.aggregate(range)?;
            println!("{}", stat.render(&agg));
            report_pushdown(&stats);
        }
        return Ok(());
    }
    let (hits, stats) = engine.query(range)?;
    for p in &hits {
        println!("{},{},{}", p.gen_time, p.arrival_time, p.value);
    }
    eprintln!(
        "{} points; {} tables read, {} disk points scanned",
        hits.len(),
        stats.tables_read,
        stats.disk_points_scanned
    );
    Ok(())
}

/// `seplsm stats` — replay a workload through an instrumented engine and
/// print the storage kernel's aggregate event view; `--trace` additionally
/// writes the full typed event stream as JSONL.
pub fn stats(opts: &Opts) -> Result<()> {
    let points = load_input(opts)?;
    let budget: usize = opts.get_or("budget", 512);
    let sstable: usize = opts.get_or("sstable", 512);
    let policy_spec = opts.get("policy").unwrap_or("conventional");
    let Some(policy) = parse_policy(policy_spec, budget)? else {
        return Err(Error::InvalidConfig(
            "stats needs a fixed policy \
             (conventional | separation[:n_seq])"
                .into(),
        ));
    };

    let aggregate = AggregateSink::with_logical_clock();
    let mut sinks: Vec<Arc<dyn Observer>> = vec![aggregate.clone()];
    let jsonl = match opts.get("trace") {
        Some(path) => {
            let file = std::fs::File::create(path)?;
            let sink = JsonlSink::with_logical_clock(Box::new(file));
            sinks.push(sink.clone());
            Some((sink, path.to_string()))
        }
        None => None,
    };

    // `--cache POINTS` routes every table read (queries and compaction
    // inputs alike) through a shared decoded-block cache of that capacity.
    let cache = opts
        .get("cache")
        .map(|raw| -> Result<Arc<BlockCache>> {
            let capacity: usize = raw.parse().map_err(|_| {
                Error::InvalidConfig(format!(
                    "--cache expects a point capacity, got `{raw}`"
                ))
            })?;
            Ok(BlockCache::with_capacity(capacity))
        })
        .transpose()?;

    let mut options = OpenOptions::new(
        EngineConfig::new(policy).with_sstable_points(sstable),
    )
    .observer(FanoutSink::new(sinks));
    if let Some(cache) = &cache {
        options = options.cache(Arc::clone(cache));
    }
    let mut engine = options.open()?;
    for p in &points {
        engine.append(*p)?;
    }
    engine.flush_all()?;
    if cache.is_some() {
        // A verification scan after ingest: blocks cached by compaction
        // reads hit; everything else faults in, warming the cache.
        engine.scan_all()?;
    }

    let m = engine.metrics();
    println!("policy:              {}", policy.name());
    println!("user points:         {}", m.user_points);
    println!("write amplification: {:.3}", m.write_amplification());
    println!();
    print!("{}", aggregate.report().render_table());
    if let Some(cache) = &cache {
        let cs = cache.stats();
        println!(
            "block cache:         {} resident points in {} blocks \
             (hit rate {:.1}%)",
            cs.resident_points,
            cs.resident_blocks,
            cs.hit_rate() * 100.0
        );
    }
    if let Some((sink, path)) = jsonl {
        sink.flush()?;
        eprintln!("trace written to {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_policy_accepts_all_forms() {
        assert_eq!(
            parse_policy("conventional", 512).expect("ok"),
            Some(Policy::conventional(512))
        );
        assert_eq!(
            parse_policy("separation:100", 512).expect("ok"),
            Some(Policy::separation(512, 100).expect("valid"))
        );
        assert_eq!(
            parse_policy("separation", 512).expect("ok"),
            Some(Policy::separation_even(512).expect("valid"))
        );
        assert_eq!(parse_policy("adaptive", 512).expect("ok"), None);
    }

    #[test]
    fn parse_policy_rejects_nonsense() {
        assert!(parse_policy("bogus", 512).is_err());
        assert!(parse_policy("separation:zzz", 512).is_err());
        assert!(parse_policy("separation:512", 512).is_err()); // n_seq == n
    }

    #[test]
    fn agg_stat_parses_and_renders() {
        assert_eq!(AggStat::parse("min").expect("ok"), AggStat::Min);
        assert_eq!(AggStat::parse("mean").expect("ok"), AggStat::Mean);
        assert_eq!(AggStat::parse("avg").expect("ok"), AggStat::Mean);
        assert!(AggStat::parse("median").is_err());
        let mut agg = seplsm_lsm::Agg::default();
        assert_eq!(AggStat::Mean.render(&agg), "nan");
        assert_eq!(AggStat::Count.render(&agg), "0");
        for v in [2.0, 4.0] {
            agg.merge_point(v);
        }
        assert_eq!(AggStat::Min.render(&agg), "2");
        assert_eq!(AggStat::Max.render(&agg), "4");
        assert_eq!(AggStat::Sum.render(&agg), "6");
        assert_eq!(AggStat::Mean.render(&agg), "3");
    }

    #[test]
    fn delta_t_estimation_uses_median_gap() {
        let points: Vec<DataPoint> = [0i64, 50, 100, 150, 5_000]
            .iter()
            .map(|&tg| DataPoint::new(tg, tg, 0.0))
            .collect();
        // Gaps: 50, 50, 50, 4850 -> median 50.
        assert_eq!(estimate_delta_t(&points).expect("ok"), 50.0);
    }
}
