//! CSV import/export of data points (`gen_time,arrival_time,value`).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use seplsm_types::{DataPoint, Error, Result};

/// Writes `points` as CSV with a header row.
pub fn write_csv(path: impl AsRef<Path>, points: &[DataPoint]) -> Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "gen_time,arrival_time,value")?;
    for p in points {
        writeln!(w, "{},{},{}", p.gen_time, p.arrival_time, p.value)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a CSV produced by [`write_csv`] (header optional).
///
/// # Errors
/// [`Error::Corrupt`] on malformed rows.
pub fn read_csv(path: impl AsRef<Path>) -> Result<Vec<DataPoint>> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut points = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("gen_time") {
            continue;
        }
        let mut fields = trimmed.split(',');
        let parse_err = |what: &str| {
            Error::Corrupt(format!(
                "csv line {}: bad {what}: {trimmed}",
                lineno + 1
            ))
        };
        let gen_time: i64 = fields
            .next()
            .ok_or_else(|| parse_err("gen_time"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("gen_time"))?;
        let arrival_time: i64 = fields
            .next()
            .ok_or_else(|| parse_err("arrival_time"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("arrival_time"))?;
        let value: f64 = fields
            .next()
            .ok_or_else(|| parse_err("value"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("value"))?;
        points.push(DataPoint::new(gen_time, arrival_time, value));
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "seplsm-csv-{tag}-{}-{:?}.csv",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn round_trips() {
        let path = temp("roundtrip");
        let pts = vec![
            DataPoint::new(0, 5, 1.5),
            DataPoint::new(50, 51, -2.25),
            DataPoint::new(100, 220, 0.0),
        ];
        write_csv(&path, &pts).expect("write");
        assert_eq!(read_csv(&path).expect("read"), pts);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_malformed_rows() {
        let path = temp("bad");
        std::fs::write(&path, "gen_time,arrival_time,value\n1,2\n")
            .expect("write");
        let err = read_csv(&path).expect_err("malformed");
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn skips_blank_lines_and_header() {
        let path = temp("blank");
        std::fs::write(&path, "\ngen_time,arrival_time,value\n\n7,8,9.0\n")
            .expect("write");
        let pts = read_csv(&path).expect("read");
        assert_eq!(pts, vec![DataPoint::new(7, 8, 9.0)]);
        std::fs::remove_file(&path).expect("cleanup");
    }
}
