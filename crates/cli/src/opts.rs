//! Flag parsing for the CLI (`--name value` pairs and bare switches).

use std::collections::HashMap;

/// Parsed command-line options.
#[derive(Debug, Default)]
pub struct Opts {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Opts {
    /// Parses `args` (everything after the subcommand).
    pub fn parse(args: &[String]) -> Self {
        let mut opts = Opts::default();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if let Some(name) = arg.strip_prefix("--") {
                // A flag followed by a non-flag token is a key/value pair;
                // otherwise it is a bare switch.
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    opts.values.insert(name.to_string(), args[i + 1].clone());
                    i += 2;
                    continue;
                }
                opts.switches.push(name.to_string());
            }
            i += 1;
        }
        opts
    }

    /// The value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of `--name` parsed as `T`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The value of `--name`, or an error mentioning the flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// `true` if the bare switch `--name` was passed.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Opts {
        Opts::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_pairs_and_switches() {
        let o = parse(&["--points", "100", "--compressed", "--seed", "7"]);
        assert_eq!(o.get("points"), Some("100"));
        assert_eq!(o.get_or("seed", 0u64), 7);
        assert!(o.switch("compressed"));
        assert!(!o.switch("missing"));
    }

    #[test]
    fn adjacent_flags_are_switches() {
        let o = parse(&["--a", "--b", "value"]);
        assert!(o.switch("a"));
        assert_eq!(o.get("b"), Some("value"));
    }

    #[test]
    fn require_reports_the_flag_name() {
        let o = parse(&[]);
        let err = o.require("input").expect_err("missing");
        assert!(err.contains("--input"));
    }

    #[test]
    fn defaults_apply_on_parse_failure() {
        let o = parse(&["--points", "not-a-number"]);
        assert_eq!(o.get_or("points", 42usize), 42);
    }
}
