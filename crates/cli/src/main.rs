//! `seplsm` — command-line interface to the library.
//!
//! ```text
//! seplsm generate --dataset M6 --points 100000 --out data.csv
//! seplsm analyze  --input data.csv --budget 512
//! seplsm ingest   --input data.csv --policy adaptive --budget 512
//! seplsm ingest   --input data.csv --policy separation:256 --dir ./db
//! seplsm query    --dir ./db --start 0 --end 100000
//! seplsm stats    --input data.csv --trace trace.jsonl
//! ```

mod commands;
mod csvio;
mod opts;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(2);
    };
    let opts = opts::Opts::parse(rest);
    let result = match command.as_str() {
        "generate" => commands::generate(&opts),
        "analyze" => commands::analyze(&opts),
        "ingest" => commands::ingest(&opts),
        "query" => commands::query(&opts),
        "stats" => commands::stats(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => {
            eprintln!("unknown command `{other}`\n{}", commands::USAGE);
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
