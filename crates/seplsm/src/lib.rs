//! `seplsm` — a Rust reproduction of *"Separation or Not: On Handling
//! Out-of-Order Time-Series Data in Leveled LSM-Tree"* (ICDE 2022).
//!
//! This facade re-exports the whole public API:
//!
//! * [`types`] — data points, time ranges, policies, errors.
//! * [`dist`] — delay distributions, special functions, quadrature, stats.
//! * [`lsm`] — the leveled LSM storage engine (`π_c` / `π_s` write paths,
//!   SSTables, WAL, background compaction, instrumentation).
//! * [`model`] — the paper's contribution: `ζ(n)`, `g(·)`, `r_c`,
//!   `r_s(n_seq)`, Algorithm 1, the delay analyzer and `π_adaptive`.
//! * [`workload`] — the paper's datasets (M1–M12, S-9, H) and query loads.
//!
//! The most common items are additionally re-exported at the crate root.
//!
//! ```
//! use seplsm::{DataPoint, EngineConfig, LsmEngine, Policy};
//!
//! let mut engine =
//!     LsmEngine::in_memory(EngineConfig::new(Policy::conventional(512)))?;
//! engine.append(DataPoint::new(0, 3, 21.5))?;
//! assert_eq!(engine.scan_all()?.len(), 1);
//! # Ok::<(), seplsm::Error>(())
//! ```

pub use seplsm_core as model;
pub use seplsm_dist as dist;
pub use seplsm_lsm as lsm;
pub use seplsm_types as types;
pub use seplsm_workload as workload;

pub use seplsm_core::{
    tune, AdaptiveConfig, AdaptiveEngine, AdaptiveOpen, AnalyzerConfig,
    DelayAnalyzer, FleetAdaptiveEngine, ReadCostModel, TunerOptions,
    TuningOutcome, WaModel, ZetaConfig, ZetaModel,
};
pub use seplsm_dist::{DelayDistribution, Empirical, LogNormal};
pub use seplsm_lsm::{
    sync_dir, AdmissionController, AdmissionDecision, AdmissionDepth,
    AdmissionOutcome, AdmissionStats, Agg, AggregateReport, AggregateSink,
    Arbiter, ArbiterConfig, ArbiterStats, BlockCache, Bucket, CacheConfig,
    CachePriority, Clock, Compression, DegradedOp, DegradedReason,
    DegradedState, DiskModel, EncodeOptions, EngineConfig, Event, FanoutSink,
    Fault, FaultPlan, FaultStore, FileStore, Histogram, IoOp, IoPacer,
    JsonlSink, LogicalClock, LsmEngine, Manifest, ManifestRecordKind, MemStore,
    MultiOpenOptions, MultiSeriesEngine, NullSink, Observer, ObserverHandle,
    OpenOptions, PaceDecision, PacerStats, QuarantinedTable, QueryStats,
    Rebalance, RecoveryMode, RecoveryOptions, RecoveryReport, RecoveryStepKind,
    RetryBackoff, RingBufferSink, SeriesAssignment, SeriesId, TableStore,
    TieredEngine, TieredOpenOptions, TieredReport, Wal, Watermarks,
};
pub use seplsm_types::{
    DataPoint, Error, Policy, Result, TimeRange, Timestamp,
};
pub use seplsm_workload::{
    paper_dataset, AggQuery, AggregationWorkload, DynamicWorkload,
    HistoricalQueries, PaperDataset, RecentQueries, S9Workload,
    SyntheticWorkload, VehicleWorkload, PAPER_DATASETS,
};

/// The working set for typical programs: engine configuration, the three
/// `OpenOptions` builders, observability sinks, and the core value types.
///
/// ```
/// use seplsm::prelude::*;
///
/// let sink = RingBufferSink::new(1024);
/// let mut engine =
///     OpenOptions::new(EngineConfig::new(Policy::conventional(512)))
///         .observer(sink.clone())
///         .open()?;
/// engine.append(DataPoint::new(0, 3, 21.5))?;
/// engine.flush_all()?;
/// assert!(sink.events().iter().any(|e| matches!(
///     e,
///     Event::PointClassified { in_order: true }
/// )));
/// # Ok::<(), seplsm::Error>(())
/// ```
pub mod prelude {
    pub use seplsm_lsm::{
        AggregateSink, EngineConfig, Event, FileStore, JsonlSink, LsmEngine,
        MemStore, MultiOpenOptions, MultiSeriesEngine, Observer, OpenOptions,
        RecoveryOptions, RingBufferSink, SeriesId, TableStore, TieredEngine,
        TieredOpenOptions,
    };
    pub use seplsm_types::{
        DataPoint, Error, Policy, Result, TimeRange, Timestamp,
    };
}
