//! `seplsm` — a Rust reproduction of *"Separation or Not: On Handling
//! Out-of-Order Time-Series Data in Leveled LSM-Tree"* (ICDE 2022).
//!
//! This facade re-exports the whole public API:
//!
//! * [`types`] — data points, time ranges, policies, errors.
//! * [`dist`] — delay distributions, special functions, quadrature, stats.
//! * [`lsm`] — the leveled LSM storage engine (`π_c` / `π_s` write paths,
//!   SSTables, WAL, background compaction, instrumentation).
//! * [`model`] — the paper's contribution: `ζ(n)`, `g(·)`, `r_c`,
//!   `r_s(n_seq)`, Algorithm 1, the delay analyzer and `π_adaptive`.
//! * [`workload`] — the paper's datasets (M1–M12, S-9, H) and query loads.
//!
//! The most common items are additionally re-exported at the crate root.
//!
//! ```
//! use seplsm::{DataPoint, EngineConfig, LsmEngine};
//!
//! let mut engine = LsmEngine::in_memory(EngineConfig::conventional(512))?;
//! engine.append(DataPoint::new(0, 3, 21.5))?;
//! assert_eq!(engine.scan_all()?.len(), 1);
//! # Ok::<(), seplsm::Error>(())
//! ```

pub use seplsm_core as model;
pub use seplsm_dist as dist;
pub use seplsm_lsm as lsm;
pub use seplsm_types as types;
pub use seplsm_workload as workload;

pub use seplsm_core::{
    tune, AdaptiveConfig, AdaptiveEngine, AnalyzerConfig, DelayAnalyzer,
    FleetAdaptiveEngine, ReadCostModel, TunerOptions, TuningOutcome, WaModel,
    ZetaConfig, ZetaModel,
};
pub use seplsm_dist::{DelayDistribution, Empirical, LogNormal};
pub use seplsm_lsm::{
    sync_dir, Compression, DiskModel, EncodeOptions, EngineConfig, Fault,
    FaultPlan, FaultStore, FileStore, IoOp, LsmEngine, Manifest, MemStore,
    MultiSeriesEngine, QuarantinedTable, QueryStats, RecoveryMode,
    RecoveryOptions, RecoveryReport, SeriesId, TableStore, TieredEngine,
    TieredReport, Wal,
};
pub use seplsm_types::{
    DataPoint, Error, Policy, Result, TimeRange, Timestamp,
};
pub use seplsm_workload::{
    paper_dataset, DynamicWorkload, HistoricalQueries, PaperDataset,
    RecentQueries, S9Workload, SyntheticWorkload, VehicleWorkload,
    PAPER_DATASETS,
};
