//! Crash-recovery demo for the durable tiered engine.
//!
//! Run in two phases against the same directory:
//!
//! ```text
//! cargo run --example tiered_crash -- ingest  /tmp/tiered-demo
//! cargo run --example tiered_crash -- recover /tmp/tiered-demo
//! ```
//!
//! The `ingest` phase appends 5 000 points (with a 30 % out-of-order
//! tail), syncs the WAL and then *exits without calling `finish()`* —
//! killing the compaction worker mid-flight, exactly like a crash.
//! The `recover` phase rebuilds the engine from the manifest + WAL and
//! checks that every acknowledged point survived.

use std::path::PathBuf;
use std::sync::Arc;

use seplsm::lsm::FileStore;
use seplsm::{DataPoint, EngineConfig, Error, Policy, TableStore, TimeRange};

const POINTS: i64 = 5_000;

fn point(i: i64) -> DataPoint {
    // Every third point arrives late: out-of-order traffic. The delay is
    // deliberately not a multiple of the 10-tick spacing so no two points
    // ever share a gen_time key.
    let delay = if i % 3 == 0 { 253 } else { 0 };
    DataPoint::new(i * 10 - delay, i * 10, i as f64)
}

fn main() -> Result<(), Error> {
    let mut args = std::env::args().skip(1);
    let (phase, dir) = match (args.next(), args.next()) {
        (Some(p), Some(d)) => (p, PathBuf::from(d)),
        _ => {
            eprintln!("usage: tiered_crash <ingest|recover> <dir>");
            std::process::exit(2);
        }
    };

    let store: Arc<dyn TableStore> =
        Arc::new(FileStore::open(dir.join("tables"))?);
    let config =
        EngineConfig::new(Policy::conventional(256)).with_sstable_points(128);

    match phase.as_str() {
        "ingest" => {
            let mut engine = seplsm::TieredOpenOptions::new(config)
                .store(store)
                .wal(dir.join("wal"))
                .manifest(dir.join("manifest"))
                .open()?;
            for i in 0..POINTS {
                engine.append(point(i))?;
            }
            engine.sync_wal()?;
            println!("acknowledged {POINTS} points; crashing (no finish)");
            // Simulate the crash: drop nothing cleanly, just exit.
            std::process::exit(0);
        }
        "recover" => {
            let (engine, _report) = seplsm::TieredOpenOptions::new(config)
                .store(store)
                .wal(dir.join("wal"))
                .manifest(dir.join("manifest"))
                .open_or_recover()?;
            let (hits, _) = engine.query(TimeRange::new(i64::MIN, i64::MAX))?;
            println!("recovered {} points", hits.len());
            for i in 0..POINTS {
                let want = point(i);
                assert!(
                    hits.iter().any(|p| p.gen_time == want.gen_time
                        && p.value == want.value),
                    "lost point {i} (gen_time {})",
                    want.gen_time
                );
            }
            assert_eq!(hits.len() as i64, POINTS, "duplicate points");
            println!("all {POINTS} acknowledged points survived the crash");
        }
        other => {
            eprintln!("unknown phase `{other}`");
            std::process::exit(2);
        }
    }
    Ok(())
}
