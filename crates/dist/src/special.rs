//! Special functions implemented in-repo: error function, standard-normal
//! CDF/PDF and quantile.
//!
//! The workspace deliberately avoids special-function crates; the models only
//! need the Gaussian family, for which compact double-precision algorithms
//! exist:
//!
//! * [`norm_cdf`] uses Graeme West's double-precision cumulative-normal
//!   algorithm (Hart-style rational approximations, ~1e-15 absolute error),
//!   which also yields an accurate *tail* probability — important because the
//!   ζ-model multiplies thousands of CDF values and needs `ln F` with small
//!   absolute error even when `F ≈ 1`.
//! * [`norm_quantile`] uses Acklam's inverse-normal approximation refined by
//!   one Halley step against [`norm_cdf`], giving near machine precision.

/// Standard normal density `φ(x) = exp(−x²/2)/√(2π)`.
pub fn norm_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal CDF `Φ(x)`, accurate to ~1e-15 (West's algorithm).
pub fn norm_cdf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let z = x.abs();
    let cum = if z > 37.0 {
        0.0
    } else {
        let e = (-z * z / 2.0).exp();
        if z < 7.071_067_811_865_475 {
            // |x| < 10/sqrt(2): Hart's rational approximation.
            let build = (((((3.52624965998911e-2 * z + 0.700383064443688)
                * z
                + 6.37396220353165)
                * z
                + 33.912866078383)
                * z
                + 112.079291497871)
                * z
                + 221.213596169931)
                * z
                + 220.206867912376;
            let build2 = ((((((8.83883476483184e-2 * z + 1.75566716318264)
                * z
                + 16.064177579207)
                * z
                + 86.7807322029461)
                * z
                + 296.564248779674)
                * z
                + 637.333633378831)
                * z
                + 793.826512519948)
                * z
                + 440.413735824752;
            e * build / build2
        } else {
            // Far tail: continued-fraction style expansion.
            let b = z + 0.65;
            let b = z + 4.0 / b;
            let b = z + 3.0 / b;
            let b = z + 2.0 / b;
            let b = z + 1.0 / b;
            e / (b * 2.506_628_274_631_000_5)
        }
    };
    // `cum` is the upper-tail probability for |x|.
    if x > 0.0 {
        1.0 - cum
    } else {
        cum
    }
}

/// Standard normal survival function `1 − Φ(x)`, accurate in the upper tail.
pub fn norm_sf(x: f64) -> f64 {
    norm_cdf(-x)
}

/// Error function `erf(x)`, derived from [`norm_cdf`]:
/// `erf(x) = 2Φ(x√2) − 1`.
pub fn erf(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 - erfc(x)
    } else {
        erfc(-x) - 1.0
    }
}

/// Complementary error function `erfc(x) = 2·Φ(−x√2)` for `x ≥ 0` (valid for
/// all real `x`).
pub fn erfc(x: f64) -> f64 {
    2.0 * norm_cdf(-x * std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Returns `-∞` for `p = 0` and `+∞` for `p = 1`; panics on `p ∉ [0, 1]`.
pub fn norm_quantile(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "norm_quantile: p={p} outside [0,1]"
    );
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    let x = acklam_inverse(p);
    // One Halley refinement step against the high-precision CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Acklam's rational approximation to the inverse normal CDF (~1.15e-9
/// relative error), used as the seed for the Halley refinement.
fn acklam_inverse(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5])
            * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r
                + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0`
/// (Lanczos approximation, ~1e-13 relative error).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    // Canonical g=7, n=9 Lanczos coefficients, quoted in full.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps small arguments accurate.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!(
            (ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10
        );
        // Recurrence Γ(x+1) = xΓ(x).
        for &x in &[0.3, 1.7, 4.2, 9.9] {
            assert!(
                (ln_gamma(x + 1.0) - (ln_gamma(x) + x.ln())).abs() < 1e-9,
                "recurrence fails at {x}"
            );
        }
    }

    #[test]
    fn cdf_matches_known_values() {
        // Reference values from standard normal tables (15 digits).
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((norm_cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-12);
        assert!((norm_cdf(-1.0) - 0.158_655_253_931_457_05).abs() < 1e-12);
        assert!((norm_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
        assert!((norm_cdf(3.0) - 0.998_650_101_968_369_9).abs() < 1e-12);
    }

    #[test]
    fn tail_probabilities_are_accurate() {
        // Φ(−8) ≈ 6.22096e-16; a naive 1−Φ(8) would round to 0.
        let tail = norm_cdf(-8.0);
        assert!(tail > 0.0);
        assert!((tail / 6.220_960_574_271_78e-16 - 1.0).abs() < 1e-6);
        // sf is the mirrored tail.
        assert_eq!(norm_sf(8.0), tail);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut prev = 0.0;
        let mut x = -37.5;
        while x <= 37.5 {
            let c = norm_cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev, "CDF decreased at x={x}");
            prev = c;
            x += 0.125;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[1e-12, 1e-6, 0.01, 0.1, 0.5, 0.9, 0.975, 1.0 - 1e-9] {
            let x = norm_quantile(p);
            assert!(
                (norm_cdf(x) - p).abs() < 1e-13 * p.max(1e-3),
                "p={p}, x={x}, cdf={}",
                norm_cdf(x)
            );
        }
    }

    #[test]
    fn quantile_endpoints_are_infinite() {
        assert_eq!(norm_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(norm_quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn erf_matches_reference() {
        assert!((erf(0.0)).abs() < 1e-15);
        assert!((erf(1.0) - 0.842_700_792_949_715).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_715).abs() < 1e-12);
        assert!((erfc(2.0) - 0.004_677_734_981_063_133).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_cdf_increment() {
        // Midpoint-rule check: ∫_0^1 φ ≈ Φ(1) − Φ(0).
        let n = 20_000;
        let h = 1.0 / n as f64;
        let sum: f64 = (0..n).map(|i| norm_pdf((i as f64 + 0.5) * h) * h).sum();
        assert!((sum - (norm_cdf(1.0) - 0.5)).abs() < 1e-9);
    }
}
