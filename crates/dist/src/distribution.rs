//! The [`DelayDistribution`] trait: what the WA models need from a delay law.

use rand::RngCore;

/// A univariate distribution of transmission delays (in milliseconds).
///
/// The trait is object-safe: the models in `seplsm-core` hold a
/// `&dyn DelayDistribution` (or `Arc<dyn …>`) so parametric laws and the
/// analyzer's [`Empirical`](crate::Empirical) fit interchangeably.
///
/// Implementors must satisfy, over the support:
/// * `cdf` is non-decreasing with limits 0 and 1;
/// * `quantile(cdf(x)) ≈ x` wherever the CDF is strictly increasing;
/// * `sf(x) = 1 − cdf(x)` (the default does this; override for tail accuracy);
/// * `sample` draws i.i.d. values distributed per `cdf`.
pub trait DelayDistribution: Send + Sync {
    /// Probability density `f(x)`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution `F(x) = P(delay ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Survival function `1 − F(x)`.
    ///
    /// Override when a direct tail computation is more accurate than
    /// `1 − cdf(x)` (the ζ-model needs `ln F` with small absolute error for
    /// `F` close to 1).
    fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Quantile function `F⁻¹(q)` for `q ∈ (0, 1)`.
    fn quantile(&self, q: f64) -> f64;

    /// Draws one delay.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// Mean delay, if finite.
    fn mean(&self) -> Option<f64>;

    /// A short human-readable description (used in experiment output).
    fn label(&self) -> String;

    /// `ln F(x)`, computed via the survival function when `F` is close to 1
    /// so that products of thousands of CDF values stay accurate.
    fn ln_cdf(&self, x: f64) -> f64 {
        let s = self.sf(x);
        if s < 0.5 {
            (-s).ln_1p() // ln(1 − s), accurate for small s
        } else {
            self.cdf(x).max(f64::MIN_POSITIVE).ln()
        }
    }

    /// A point `u` with `F(u) ≥ 1 − eps`: effectively the upper edge of the
    /// support for numerical truncation. Defaults to the `1 − eps` quantile.
    fn upper_tail(&self, eps: f64) -> f64 {
        self.quantile(1.0 - eps)
    }
}

impl<T: DelayDistribution + ?Sized> DelayDistribution for &T {
    fn pdf(&self, x: f64) -> f64 {
        (**self).pdf(x)
    }
    fn cdf(&self, x: f64) -> f64 {
        (**self).cdf(x)
    }
    fn sf(&self, x: f64) -> f64 {
        (**self).sf(x)
    }
    fn quantile(&self, q: f64) -> f64 {
        (**self).quantile(q)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (**self).sample(rng)
    }
    fn mean(&self) -> Option<f64> {
        (**self).mean()
    }
    fn label(&self) -> String {
        (**self).label()
    }
    fn ln_cdf(&self, x: f64) -> f64 {
        (**self).ln_cdf(x)
    }
    fn upper_tail(&self, eps: f64) -> f64 {
        (**self).upper_tail(eps)
    }
}

impl<T: DelayDistribution + ?Sized> DelayDistribution for std::sync::Arc<T> {
    fn pdf(&self, x: f64) -> f64 {
        (**self).pdf(x)
    }
    fn cdf(&self, x: f64) -> f64 {
        (**self).cdf(x)
    }
    fn sf(&self, x: f64) -> f64 {
        (**self).sf(x)
    }
    fn quantile(&self, q: f64) -> f64 {
        (**self).quantile(q)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (**self).sample(rng)
    }
    fn mean(&self) -> Option<f64> {
        (**self).mean()
    }
    fn label(&self) -> String {
        (**self).label()
    }
    fn ln_cdf(&self, x: f64) -> f64 {
        (**self).ln_cdf(x)
    }
    fn upper_tail(&self, eps: f64) -> f64 {
        (**self).upper_tail(eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parametric::LogNormal;

    #[test]
    fn ln_cdf_uses_tail_path_near_one() {
        let d = LogNormal::new(4.0, 1.5);
        // Deep in the upper tail, F is so close to 1 that 1-F underflows in
        // naive arithmetic; ln_cdf must stay finite, tiny and negative.
        let x = d.quantile(1.0 - 1e-12);
        let lf = d.ln_cdf(x);
        assert!(lf < 0.0 && lf > -1e-9, "ln_cdf={lf}");
    }

    #[test]
    fn trait_is_object_safe_and_usable_via_dyn() {
        let d = LogNormal::new(4.0, 1.5);
        let dd: &dyn DelayDistribution = &d;
        assert!((dd.cdf(dd.quantile(0.5)) - 0.5).abs() < 1e-9);
        assert!(dd.upper_tail(1e-6) > dd.quantile(0.5));
    }
}
