//! Descriptive statistics: histograms, Kolmogorov–Smirnov distance,
//! autocorrelation, and sliding-window smoothing.
//!
//! These back three parts of the reproduction:
//! * the delay analyzer's drift detector ([`ks_two_sample`] against the
//!   profile in force at the last tuning decision, Fig. 10/17);
//! * the paper's independence check on dataset `H` ([`autocorrelation`] +
//!   95 % bounds, Fig. 16(a), where the paper used MATLAB's `autocorr`);
//! * figure rendering (delay histograms of Figs. 8/19, the sliding-window WA
//!   smoothing of Fig. 10).

/// A fixed-width histogram over `[min, max]`.
#[derive(Debug, Clone)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram of `samples` with `bins` equal-width bins spanning
    /// the sample range. Panics on empty input or `bins == 0`.
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        let mut sorted: Vec<f64> =
            samples.iter().copied().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self::from_sorted(&sorted, bins)
    }

    /// Builds from already-sorted finite samples.
    pub fn from_sorted(sorted: &[f64], bins: usize) -> Self {
        assert!(!sorted.is_empty(), "Histogram needs samples");
        assert!(bins > 0, "Histogram needs at least one bin");
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let mut h = Self {
            min,
            max,
            counts: vec![0; bins],
            total: 0,
        };
        for &x in sorted {
            let idx = h.bin_index(x);
            h.counts[idx] += 1;
            h.total += 1;
        }
        h
    }

    /// Index of the bin containing `x` (clamped to the edge bins).
    pub fn bin_index(&self, x: f64) -> usize {
        if self.max <= self.min {
            return 0;
        }
        let f = (x - self.min) / (self.max - self.min);
        ((f * self.counts.len() as f64) as usize).min(self.counts.len() - 1)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total number of samples counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        if self.max > self.min {
            (self.max - self.min) / self.counts.len() as f64
        } else {
            1.0
        }
    }

    /// `(lower_edge, count)` per bin — the paper's histogram panels.
    pub fn bars(&self) -> Vec<(f64, u64)> {
        let w = self.bin_width();
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.min + i as f64 * w, c))
            .collect()
    }

    /// Density estimate at `x` (zero outside the sample range).
    pub fn density(&self, x: f64) -> f64 {
        if x < self.min || x > self.max || self.total == 0 {
            return 0.0;
        }
        let idx = self.bin_index(x);
        self.counts[idx] as f64 / (self.total as f64 * self.bin_width())
    }
}

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0 for fewer than two values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolated percentile (`p ∈ [0, 100]`) of *sorted* input.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    let t = p / 100.0 * (sorted.len() - 1) as f64;
    let i = t.floor() as usize;
    if i + 1 >= sorted.len() {
        return sorted[sorted.len() - 1];
    }
    let frac = t - i as f64;
    sorted[i] + frac * (sorted[i + 1] - sorted[i])
}

/// Two-sample Kolmogorov–Smirnov statistic `D = sup |F_a − F_b|`.
///
/// Inputs need not be sorted. Used by the analyzer to decide whether the
/// delay distribution has drifted since the last policy decision.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.total_cmp(y));
    sb.sort_by(|x, y| x.total_cmp(y));
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let xa = sa[i];
        let xb = sb[j];
        let x = xa.min(xb);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Critical KS distance at significance `alpha ∈ {0.10, 0.05, 0.01, 0.001}`
/// for sample sizes `n`, `m` (asymptotic formula `c(α)·√((n+m)/(n·m))`).
pub fn ks_critical(n: usize, m: usize, alpha: f64) -> f64 {
    let c = if alpha <= 0.001 {
        1.949
    } else if alpha <= 0.01 {
        1.628
    } else if alpha <= 0.05 {
        1.358
    } else {
        1.224
    };
    c * ((n + m) as f64 / (n as f64 * m as f64)).sqrt()
}

/// Sample autocorrelation function up to `max_lag` (inclusive).
///
/// Returns `acf[0] = 1` and the standard biased estimator
/// `acf[k] = Σ (x_t−x̄)(x_{t+k}−x̄) / Σ (x_t−x̄)²` — the same definition as
/// MATLAB's `autocorr` used in the paper's Fig. 16(a).
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    assert!(n >= 2, "autocorrelation needs at least two values");
    let max_lag = max_lag.min(n - 1);
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    let mut acf = Vec::with_capacity(max_lag + 1);
    for k in 0..=max_lag {
        if denom == 0.0 {
            acf.push(if k == 0 { 1.0 } else { 0.0 });
            continue;
        }
        let num: f64 = (0..n - k).map(|t| (xs[t] - m) * (xs[t + k] - m)).sum();
        acf.push(num / denom);
    }
    acf
}

/// 95 % white-noise confidence bound for the ACF: `±1.96/√n` — the two green
/// lines of the paper's Fig. 16(a).
pub fn autocorr_confidence(n: usize) -> f64 {
    1.96 / (n as f64).sqrt()
}

/// Centered sliding-window mean with the given window size (window is
/// truncated at the edges). Used to smooth the WA time series in Fig. 10.
pub fn sliding_mean(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1, "window must be >= 1");
    let n = xs.len();
    let half = window / 2;
    let mut out = Vec::with_capacity(n);
    // Prefix sums make each window O(1).
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    let mut running = 0.0;
    for &x in xs {
        running += x;
        prefix.push(running);
    }
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        out.push((prefix[hi] - prefix[lo]) / (hi - lo) as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_everything_once() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::from_samples(&xs, 10);
        assert_eq!(h.total(), 100);
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
        assert_eq!(h.bins(), 10);
        // Uniform data: every bin gets 10.
        assert!(h.counts().iter().all(|&c| c == 10));
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let h = Histogram::from_samples(&xs, 20);
        let integral: f64 = h
            .counts()
            .iter()
            .map(|&c| c as f64 / h.total() as f64)
            .sum();
        assert!((integral - 1.0).abs() < 1e-12);
        // density * width sums to 1 as well
        let d: f64 = h
            .bars()
            .iter()
            .map(|(edge, _)| {
                h.density(edge + h.bin_width() / 2.0) * h.bin_width()
            })
            .sum();
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_identical_samples() {
        let h = Histogram::from_samples(&[3.0, 3.0, 3.0], 5);
        assert_eq!(h.total(), 3);
        assert!(h.density(3.0) > 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 100.0), 5.0);
        assert_eq!(percentile_sorted(&xs, 50.0), 3.0);
        assert!((percentile_sorted(&xs, 25.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_two_sample(&a, &a), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert!((ks_two_sample(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_detects_location_shift() {
        let a: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..500).map(|i| i as f64 + 250.0).collect();
        let d = ks_two_sample(&a, &b);
        assert!(d > ks_critical(500, 500, 0.01), "d={d}");
    }

    #[test]
    fn ks_same_distribution_stays_below_critical() {
        // Interleaved halves of the same arithmetic sequence.
        let a: Vec<f64> = (0..500).map(|i| (2 * i) as f64).collect();
        let b: Vec<f64> = (0..500).map(|i| (2 * i + 1) as f64).collect();
        let d = ks_two_sample(&a, &b);
        assert!(d < ks_critical(500, 500, 0.05), "d={d}");
    }

    #[test]
    fn ks_critical_decreases_with_sample_size() {
        assert!(
            ks_critical(100, 100, 0.05) > ks_critical(10_000, 10_000, 0.05)
        );
        assert!(ks_critical(100, 100, 0.01) > ks_critical(100, 100, 0.05));
    }

    #[test]
    fn acf_of_white_noise_is_small() {
        // Deterministic pseudo-noise via a simple LCG.
        let mut state: u64 = 12345;
        let xs: Vec<f64> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let acf = autocorrelation(&xs, 10);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        let bound = autocorr_confidence(xs.len());
        for (k, &a) in acf.iter().enumerate().skip(1) {
            assert!(a.abs() < 3.0 * bound, "lag {k}: {a}");
        }
    }

    #[test]
    fn acf_of_trend_is_large_at_lag_one() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let acf = autocorrelation(&xs, 1);
        assert!(acf[1] > 0.99, "lag-1 ACF of a trend: {}", acf[1]);
    }

    #[test]
    fn acf_constant_series_degenerates_gracefully() {
        let xs = vec![5.0; 100];
        let acf = autocorrelation(&xs, 3);
        assert_eq!(acf, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn sliding_mean_smooths_and_preserves_length() {
        let xs: Vec<f64> = (0..10)
            .map(|i| if i % 2 == 0 { 0.0 } else { 10.0 })
            .collect();
        let sm = sliding_mean(&xs, 4);
        assert_eq!(sm.len(), xs.len());
        // Interior values hover near the global mean of 5.
        for &v in &sm[2..8] {
            assert!((v - 5.0).abs() <= 2.5, "v={v}");
        }
    }

    #[test]
    fn sliding_mean_window_one_is_identity() {
        let xs = [1.0, 4.0, 9.0];
        assert_eq!(sliding_mean(&xs, 1), xs.to_vec());
    }
}
