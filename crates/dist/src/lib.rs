//! Delay distributions and numerical machinery for the `seplsm` workspace.
//!
//! The paper's write-amplification models take the delay distribution of the
//! workload as input: its PDF `f(x)`, CDF `F(x)` and (for robust numerical
//! integration) its quantile function `F⁻¹(q)`. This crate provides:
//!
//! * [`DelayDistribution`] — the common interface (PDF/CDF/survival/quantile/
//!   sampling), implemented by the parametric families used in the paper's
//!   experiments ([`LogNormal`] foremost — all synthetic datasets M1–M12 use
//!   lognormal delays) plus [`Exponential`], [`Normal`], [`Uniform`],
//!   [`Pareto`], [`Constant`], [`Shifted`] and weighted [`Mixture`]
//!   distributions for building the S-9 / H style workloads.
//! * [`Empirical`] — a distribution fitted from observed delay samples, the
//!   backbone of the delay analyzer (§I-D): the analyzer collects delays and
//!   evaluates the models on their empirical distribution.
//! * [`quadrature`] — Gauss–Legendre rules and adaptive Simpson integration;
//!   [`quadrature::expectation`] evaluates `∫ f(x)·h(x) dx` by quantile
//!   substitution so heavy-tailed delay laws stay well conditioned.
//! * [`special`] — in-repo erf/normal-CDF/inverse-normal-CDF (no external
//!   special-function crates).
//! * [`stats`] — histograms, two-sample Kolmogorov–Smirnov distance (drift
//!   detection in the analyzer), the autocorrelation function used by the
//!   paper's Fig. 16(a), and misc descriptive statistics.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod distribution;
pub mod empirical;
pub mod parametric;
pub mod quadrature;
pub mod special;
pub mod stats;

pub use distribution::DelayDistribution;
pub use empirical::Empirical;
pub use parametric::{
    Constant, Exponential, LogNormal, Mixture, Normal, Pareto, Shifted,
    Uniform, Weibull,
};
