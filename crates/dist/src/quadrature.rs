//! Numerical integration: Gauss–Legendre rules, adaptive Simpson, and the
//! quantile-substitution expectation used throughout the ζ-model.
//!
//! The ζ-model's delay integral `∫₀^∞ f(x)·h(x) dx` is awkward on the raw
//! axis: the lognormal laws in the paper put mass across 4–5 decades. We
//! substitute `x = F⁻¹(q)` which turns it into `∫₀¹ h(F⁻¹(q)) dq` — a smooth
//! bounded-domain integral handled well by a fixed Gauss–Legendre rule, for
//! *any* delay law including empirical ones.

use crate::distribution::DelayDistribution;

/// A fixed-order Gauss–Legendre quadrature rule on `[-1, 1]`.
///
/// Nodes and weights are computed once (Newton iteration on the Legendre
/// recurrence) and reused for every integral.
#[derive(Debug, Clone)]
pub struct GaussLegendre {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl GaussLegendre {
    /// Builds the `order`-point rule (`order ≥ 1`).
    pub fn new(order: usize) -> Self {
        assert!(order >= 1, "GaussLegendre order must be >= 1");
        let n = order;
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        for i in 0..m {
            // Initial guess (Chebyshev-like).
            let mut x = (std::f64::consts::PI * (i as f64 + 0.75)
                / (n as f64 + 0.5))
                .cos();
            let mut dp = 0.0;
            for _ in 0..100 {
                // Legendre recurrence for P_n(x) and derivative.
                let mut p0 = 1.0;
                let mut p1 = x;
                for k in 2..=n {
                    let kf = k as f64;
                    let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
                    p0 = p1;
                    p1 = p2;
                }
                // p1 = P_n(x), p0 = P_{n-1}(x)
                dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
                let dx = p1 / dp;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            nodes[i] = -x;
            nodes[n - 1 - i] = x;
            let w = 2.0 / ((1.0 - x * x) * dp * dp);
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        if n % 2 == 1 {
            nodes[n / 2] = 0.0;
        }
        Self { nodes, weights }
    }

    /// Number of quadrature points.
    pub fn order(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes on `[-1, 1]`.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Weights matching [`GaussLegendre::nodes`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `∫_a^b f(x) dx`.
    pub fn integrate(
        &self,
        a: f64,
        b: f64,
        mut f: impl FnMut(f64) -> f64,
    ) -> f64 {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        let mut acc = 0.0;
        for (x, w) in self.nodes.iter().zip(&self.weights) {
            acc += w * f(mid + half * x);
        }
        acc * half
    }

    /// The rule's `(node, weight)` pairs mapped onto `[a, b]` (weights include
    /// the Jacobian), for callers that evaluate the integrand themselves.
    pub fn mapped(&self, a: f64, b: f64) -> Vec<(f64, f64)> {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(x, w)| (mid + half * x, w * half))
            .collect()
    }
}

/// `E_f[h(X)] = ∫ f(x)·h(x) dx`, via quantile substitution on `[0, 1]`.
///
/// Works for any [`DelayDistribution`] with a usable quantile function —
/// no density evaluations, no infinite domain, heavy tails welcome.
pub fn expectation(
    rule: &GaussLegendre,
    dist: &dyn DelayDistribution,
    mut h: impl FnMut(f64) -> f64,
) -> f64 {
    rule.integrate(0.0, 1.0, |q| h(dist.quantile(q.clamp(1e-12, 1.0 - 1e-12))))
}

/// The quadrature abscissae for [`expectation`], as `(delay, weight)` pairs.
///
/// The ζ-model evaluates many expectations against the *same* distribution;
/// exposing the transformed nodes lets it precompute per-node state once.
pub fn expectation_nodes(
    rule: &GaussLegendre,
    dist: &dyn DelayDistribution,
) -> Vec<(f64, f64)> {
    rule.mapped(0.0, 1.0)
        .into_iter()
        .map(|(q, w)| (dist.quantile(q.clamp(1e-12, 1.0 - 1e-12)), w))
        .collect()
}

/// Adaptive Simpson integration of `f` on `[a, b]` to absolute tolerance
/// `tol` (recursion capped at `max_depth`).
pub fn adaptive_simpson(
    f: &dyn Fn(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
    max_depth: u32,
) -> f64 {
    fn simpson(fa: f64, fm: f64, fb: f64, a: f64, b: f64) -> f64 {
        (b - a) / 6.0 * (fa + 4.0 * fm + fb)
    }
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        f: &dyn Fn(f64) -> f64,
        a: f64,
        b: f64,
        fa: f64,
        fm: f64,
        fb: f64,
        whole: f64,
        tol: f64,
        depth: u32,
    ) -> f64 {
        let m = 0.5 * (a + b);
        let lm = 0.5 * (a + m);
        let rm = 0.5 * (m + b);
        let flm = f(lm);
        let frm = f(rm);
        let left = simpson(fa, flm, fm, a, m);
        let right = simpson(fm, frm, fb, m, b);
        let delta = left + right - whole;
        if depth == 0 || delta.abs() <= 15.0 * tol {
            left + right + delta / 15.0
        } else {
            recurse(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)
                + recurse(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)
        }
    }
    let m = 0.5 * (a + b);
    let (fa, fm, fb) = (f(a), f(m), f(b));
    let whole = simpson(fa, fm, fb, a, b);
    recurse(f, a, b, fa, fm, fb, whole, tol, max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parametric::{Exponential, LogNormal};

    #[test]
    fn gauss_legendre_weights_sum_to_two() {
        for order in [2, 8, 32, 64, 65] {
            let gl = GaussLegendre::new(order);
            let sum: f64 = gl.weights().iter().sum();
            assert!((sum - 2.0).abs() < 1e-12, "order {order}: {sum}");
        }
    }

    #[test]
    fn gauss_legendre_is_exact_for_polynomials() {
        // An n-point rule integrates degree 2n−1 exactly.
        let gl = GaussLegendre::new(5);
        let got =
            gl.integrate(-1.0, 1.0, |x| x.powi(9) + 3.0 * x.powi(4) + 1.0);
        let want = 0.0 + 3.0 * 2.0 / 5.0 + 2.0;
        assert!((got - want).abs() < 1e-13);
    }

    #[test]
    fn gauss_legendre_handles_shifted_intervals() {
        let gl = GaussLegendre::new(16);
        let got = gl.integrate(2.0, 5.0, |x| x * x);
        assert!((got - (125.0 - 8.0) / 3.0).abs() < 1e-10);
    }

    #[test]
    fn nodes_are_symmetric_and_sorted() {
        let gl = GaussLegendre::new(16);
        let nodes = gl.nodes();
        for w in nodes.windows(2) {
            assert!(w[0] < w[1]);
        }
        for i in 0..8 {
            assert!((nodes[i] + nodes[15 - i]).abs() < 1e-14);
        }
    }

    #[test]
    fn expectation_recovers_moments() {
        let gl = GaussLegendre::new(64);
        let d = Exponential::with_mean(20.0);
        let m1 = expectation(&gl, &d, |x| x);
        assert!((m1 - 20.0).abs() < 0.05, "E[X]={m1}");
        let m2 = expectation(&gl, &d, |x| x * x);
        assert!((m2 / 800.0 - 1.0).abs() < 0.05, "E[X^2]={m2}");
    }

    #[test]
    fn expectation_of_bounded_h_on_heavy_tail() {
        // E[F(X)] = 1/2 for any continuous law — a sharp self-test.
        let gl = GaussLegendre::new(64);
        let d = LogNormal::new(5.0, 2.0);
        let got =
            expectation(&gl, &d, |x| crate::DelayDistribution::cdf(&d, x));
        assert!((got - 0.5).abs() < 1e-6, "E[F(X)]={got}");
    }

    #[test]
    fn expectation_nodes_match_expectation() {
        let gl = GaussLegendre::new(48);
        let d = LogNormal::new(4.0, 1.5);
        let via_nodes: f64 = expectation_nodes(&gl, &d)
            .iter()
            .map(|(x, w)| w * (1.0 + x).ln())
            .sum();
        let direct = expectation(&gl, &d, |x| (1.0 + x).ln());
        assert!((via_nodes - direct).abs() < 1e-12);
    }

    #[test]
    fn adaptive_simpson_matches_closed_form() {
        let got = adaptive_simpson(
            &|x: f64| x.sin(),
            0.0,
            std::f64::consts::PI,
            1e-10,
            30,
        );
        assert!((got - 2.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_simpson_handles_peaked_integrands() {
        // Narrow Gaussian bump integrates to ~1.
        let got = adaptive_simpson(
            &|x: f64| crate::special::norm_pdf((x - 500.0) / 2.0) / 2.0,
            0.0,
            1000.0,
            1e-10,
            40,
        );
        assert!((got - 1.0).abs() < 1e-8, "got {got}");
    }
}
