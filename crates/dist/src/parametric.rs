//! Parametric delay distributions.
//!
//! [`LogNormal`] is the workhorse: every synthetic dataset in the paper
//! (M1–M12, Figs. 5/7/9/10/12–14, Table III) draws delays from a lognormal
//! law. The others are building blocks for the simulated real-world datasets
//! (S-9 and the vehicle dataset H use heavy-tailed [`Mixture`]s with
//! [`Shifted`] components to model batched re-sends) and for robustness tests.

use rand::Rng;
use rand::RngCore;

use crate::distribution::DelayDistribution;
use crate::special::{norm_cdf, norm_pdf, norm_quantile, norm_sf};

/// Draws a standard normal variate via the Box–Muller transform.
fn sample_std_normal(rng: &mut dyn RngCore) -> f64 {
    // Avoid ln(0) by nudging u1 away from zero.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Lognormal delay law: `ln(delay) ~ N(mu, sigma²)`.
///
/// The paper's synthetic datasets use `mu ∈ {4, 5}` and
/// `sigma ∈ {1.5, 1.75, 2}` (delays in milliseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates `LogNormal(mu, sigma)`; `sigma` must be positive and finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma > 0.0 && sigma.is_finite(),
            "LogNormal sigma must be > 0"
        );
        Self { mu, sigma }
    }

    /// Location parameter `mu` (mean of `ln X`).
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter `sigma` (std-dev of `ln X`).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl DelayDistribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        norm_pdf((x.ln() - self.mu) / self.sigma) / (x * self.sigma)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        norm_cdf((x.ln() - self.mu) / self.sigma)
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        norm_sf((x.ln() - self.mu) / self.sigma)
    }

    fn quantile(&self, q: f64) -> f64 {
        (self.mu + self.sigma * norm_quantile(q)).exp()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (self.mu + self.sigma * sample_std_normal(rng)).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + self.sigma * self.sigma / 2.0).exp())
    }

    fn label(&self) -> String {
        format!("LogNormal(mu={}, sigma={})", self.mu, self.sigma)
    }
}

/// Gaussian delay law `N(mean, std²)`.
///
/// Delays can be negative under this law (clock skew); the models tolerate
/// that, matching the paper's independence-only assumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates `N(mean, std²)`; `std` must be positive and finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std > 0.0 && std.is_finite(), "Normal std must be > 0");
        Self { mean, std }
    }
}

impl DelayDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        norm_pdf((x - self.mean) / self.std) / self.std
    }

    fn cdf(&self, x: f64) -> f64 {
        norm_cdf((x - self.mean) / self.std)
    }

    fn sf(&self, x: f64) -> f64 {
        norm_sf((x - self.mean) / self.std)
    }

    fn quantile(&self, q: f64) -> f64 {
        self.mean + self.std * norm_quantile(q)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.mean + self.std * sample_std_normal(rng)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mean)
    }

    fn label(&self) -> String {
        format!("Normal(mean={}, std={})", self.mean, self.std)
    }
}

/// Exponential delay law with the given rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential law with rate `λ > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "Exponential rate must be > 0"
        );
        Self { rate }
    }

    /// Creates an exponential law with the given mean delay.
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }
}

impl DelayDistribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x < 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        -(-q).ln_1p() / self.rate // −ln(1−q)/λ
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.rate
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.rate)
    }

    fn label(&self) -> String {
        format!("Exponential(rate={})", self.rate)
    }
}

/// Uniform delay law on `[low, high]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Creates `U[low, high]` with `low < high`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low < high, "Uniform requires low < high");
        Self { low, high }
    }
}

impl DelayDistribution for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.low || x > self.high {
            0.0
        } else {
            1.0 / (self.high - self.low)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.low) / (self.high - self.low)).clamp(0.0, 1.0)
    }

    fn quantile(&self, q: f64) -> f64 {
        self.low + q * (self.high - self.low)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.low + rng.gen::<f64>() * (self.high - self.low)
    }

    fn mean(&self) -> Option<f64> {
        Some((self.low + self.high) / 2.0)
    }

    fn label(&self) -> String {
        format!("Uniform[{}, {}]", self.low, self.high)
    }
}

/// Pareto (power-law tail) delay law: `P(X > x) = (x_m/x)^α` for `x ≥ x_m`.
///
/// Used to model the long-delay stragglers of the S-9 dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto law with scale `x_m > 0` and shape `α > 0`.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(
            scale > 0.0 && shape > 0.0,
            "Pareto scale and shape must be > 0"
        );
        Self { scale, shape }
    }
}

impl DelayDistribution for Pareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.scale {
            0.0
        } else {
            self.shape * self.scale.powf(self.shape) / x.powf(self.shape + 1.0)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.scale {
            0.0
        } else {
            1.0 - (self.scale / x).powf(self.shape)
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x < self.scale {
            1.0
        } else {
            (self.scale / x).powf(self.shape)
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        self.scale / (1.0 - q).powf(1.0 / self.shape)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        self.scale / u.powf(1.0 / self.shape)
    }

    fn mean(&self) -> Option<f64> {
        (self.shape > 1.0).then(|| self.shape * self.scale / (self.shape - 1.0))
    }

    fn label(&self) -> String {
        format!("Pareto(scale={}, shape={})", self.scale, self.shape)
    }
}

/// Weibull delay law: `F(x) = 1 − exp(−(x/λ)^k)` for `x ≥ 0`.
///
/// `k < 1` gives a heavy, sub-exponential tail (bursty retries); `k = 1`
/// degenerates to the exponential; `k > 1` concentrates around the scale —
/// a common parametric family for transmission-delay fitting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    scale: f64,
    shape: f64,
}

impl Weibull {
    /// Creates a Weibull law with scale `λ > 0` and shape `k > 0`.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(
            scale > 0.0 && shape > 0.0,
            "Weibull scale and shape must be > 0"
        );
        Self { scale, shape }
    }
}

impl DelayDistribution for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let z = x / self.scale;
        self.shape / self.scale
            * z.powf(self.shape - 1.0)
            * (-z.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x < 0.0 {
            1.0
        } else {
            (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        self.scale * (-(-q).ln_1p()).powf(1.0 / self.shape)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> Option<f64> {
        Some(
            self.scale * crate::special::ln_gamma(1.0 + 1.0 / self.shape).exp(),
        )
    }

    fn label(&self) -> String {
        format!("Weibull(scale={}, shape={})", self.scale, self.shape)
    }
}

/// Degenerate distribution: every delay equals `value`.
///
/// With `value = 0` this models perfectly in-order arrivals, a useful
/// baseline (WA collapses to 1 under both policies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    value: f64,
}

impl Constant {
    /// Creates a point mass at `value`.
    pub fn new(value: f64) -> Self {
        Self { value }
    }
}

impl DelayDistribution for Constant {
    fn pdf(&self, x: f64) -> f64 {
        // Dirac mass; conventionally 0 except at the atom. Models must use
        // the CDF/quantile for this distribution.
        if x == self.value {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn quantile(&self, _q: f64) -> f64 {
        self.value
    }

    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }

    fn mean(&self) -> Option<f64> {
        Some(self.value)
    }

    fn label(&self) -> String {
        format!("Constant({})", self.value)
    }
}

/// A distribution shifted right by a fixed offset: `X' = X + offset`.
///
/// Models a fixed transmission latency on top of a random jitter, e.g. the
/// ≈5×10⁴ ms batch re-send period of the vehicle dataset H.
#[derive(Debug, Clone)]
pub struct Shifted<D> {
    inner: D,
    offset: f64,
}

impl<D: DelayDistribution> Shifted<D> {
    /// Wraps `inner`, adding `offset` to every delay.
    pub fn new(inner: D, offset: f64) -> Self {
        Self { inner, offset }
    }
}

impl<D: DelayDistribution> DelayDistribution for Shifted<D> {
    fn pdf(&self, x: f64) -> f64 {
        self.inner.pdf(x - self.offset)
    }

    fn cdf(&self, x: f64) -> f64 {
        self.inner.cdf(x - self.offset)
    }

    fn sf(&self, x: f64) -> f64 {
        self.inner.sf(x - self.offset)
    }

    fn quantile(&self, q: f64) -> f64 {
        self.inner.quantile(q) + self.offset
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.inner.sample(rng) + self.offset
    }

    fn mean(&self) -> Option<f64> {
        self.inner.mean().map(|m| m + self.offset)
    }

    fn label(&self) -> String {
        format!("{} + {}", self.inner.label(), self.offset)
    }
}

/// A finite mixture of delay laws with the given weights.
///
/// Mixtures express the bimodal delay profiles of the paper's real-world
/// datasets: most points arrive promptly, a minority arrive one re-send
/// period late (dataset H, Fig. 19) or after a heavy-tailed straggler delay
/// (dataset S-9, Fig. 8).
pub struct Mixture {
    components: Vec<(f64, Box<dyn DelayDistribution>)>,
}

impl Mixture {
    /// Creates a mixture; weights must be positive and are normalised to 1.
    pub fn new(components: Vec<(f64, Box<dyn DelayDistribution>)>) -> Self {
        assert!(
            !components.is_empty(),
            "Mixture needs at least one component"
        );
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            total > 0.0 && components.iter().all(|(w, _)| *w > 0.0),
            "Mixture weights must be positive"
        );
        let components = components
            .into_iter()
            .map(|(w, d)| (w / total, d))
            .collect();
        Self { components }
    }

    /// Convenience: a two-component mixture.
    pub fn of_two(
        w1: f64,
        d1: impl DelayDistribution + 'static,
        w2: f64,
        d2: impl DelayDistribution + 'static,
    ) -> Self {
        Self::new(vec![(w1, Box::new(d1)), (w2, Box::new(d2))])
    }
}

impl DelayDistribution for Mixture {
    fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.pdf(x)).sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.cdf(x)).sum()
    }

    fn sf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.sf(x)).sum()
    }

    fn quantile(&self, q: f64) -> f64 {
        // No closed form: bisect the mixture CDF between component extremes.
        assert!((0.0..=1.0).contains(&q), "quantile: q={q} outside [0,1]");
        let q = q.clamp(1e-15, 1.0 - 1e-15);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, d) in &self.components {
            lo = lo.min(d.quantile(1e-12));
            hi = hi.max(d.quantile(1.0 - 1e-12));
        }
        if !lo.is_finite() {
            lo = -1e18;
        }
        if !hi.is_finite() {
            hi = 1e18;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) <= 1e-9 * hi.abs().max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u: f64 = rng.gen();
        for (w, d) in &self.components {
            if u < *w {
                return d.sample(rng);
            }
            u -= w;
        }
        // Floating-point slack: fall back to the last component.
        self.components.last().map_or(0.0, |(_, d)| d.sample(rng))
    }

    fn mean(&self) -> Option<f64> {
        let mut acc = 0.0;
        for (w, d) in &self.components {
            acc += w * d.mean()?;
        }
        Some(acc)
    }

    fn label(&self) -> String {
        let parts: Vec<String> = self
            .components
            .iter()
            .map(|(w, d)| format!("{:.3}*{}", w, d.label()))
            .collect();
        format!("Mixture[{}]", parts.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_quantile_inverts<D: DelayDistribution>(d: &D, tol: f64) {
        for &q in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = d.quantile(q);
            let back = d.cdf(x);
            assert!(
                (back - q).abs() < tol,
                "{}: quantile({q})={x}, cdf back={back}",
                d.label()
            );
        }
    }

    fn check_sample_mean<D: DelayDistribution>(d: &D, rel_tol: f64) {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mean: f64 =
            (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let expected = d.mean().expect("finite mean");
        assert!(
            (mean - expected).abs() < rel_tol * expected.abs().max(1.0),
            "{}: sample mean {mean} vs expected {expected}",
            d.label()
        );
    }

    #[test]
    fn lognormal_quantile_and_mean() {
        let d = LogNormal::new(4.0, 1.5);
        check_quantile_inverts(&d, 1e-10);
        assert!((d.mean().unwrap() - (4.0f64 + 1.125).exp()).abs() < 1e-9);
        check_sample_mean(&d, 0.15); // heavy tail: loose tolerance
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let d = LogNormal::new(5.0, 2.0);
        assert!((d.quantile(0.5) - 5.0f64.exp()).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_sf_sum_to_one() {
        let d = Normal::new(10.0, 3.0);
        check_quantile_inverts(&d, 1e-10);
        for &x in &[-5.0, 0.0, 10.0, 25.0] {
            assert!((d.cdf(x) + d.sf(x) - 1.0).abs() < 1e-12);
        }
        check_sample_mean(&d, 0.02);
    }

    #[test]
    fn exponential_closed_forms() {
        let d = Exponential::with_mean(20.0);
        assert!((d.cdf(20.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        check_quantile_inverts(&d, 1e-12);
        check_sample_mean(&d, 0.02);
    }

    #[test]
    fn uniform_density_and_bounds() {
        let d = Uniform::new(5.0, 15.0);
        assert_eq!(d.pdf(4.0), 0.0);
        assert!((d.pdf(10.0) - 0.1).abs() < 1e-15);
        assert_eq!(d.cdf(20.0), 1.0);
        check_quantile_inverts(&d, 1e-12);
        check_sample_mean(&d, 0.02);
    }

    #[test]
    fn pareto_tail_is_power_law() {
        let d = Pareto::new(1.0, 2.0);
        assert!((d.sf(10.0) - 0.01).abs() < 1e-12);
        check_quantile_inverts(&d, 1e-12);
        assert!((d.mean().unwrap() - 2.0).abs() < 1e-12);
        // Shape ≤ 1 has no finite mean.
        assert!(Pareto::new(1.0, 0.9).mean().is_none());
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(20.0, 1.0);
        let e = Exponential::with_mean(20.0);
        for &x in &[1.0, 5.0, 20.0, 100.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12, "x={x}");
            assert!((w.pdf(x) - e.pdf(x)).abs() < 1e-12, "x={x}");
        }
        assert!((w.mean().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn weibull_closed_forms_and_sampling() {
        let w = Weibull::new(100.0, 0.7); // heavy tail
        check_quantile_inverts(&w, 1e-10);
        check_sample_mean(&w, 0.05);
        // Heavy tail: sf decays slower than exponential at large x.
        let e = Exponential::with_mean(w.mean().unwrap());
        assert!(w.sf(2_000.0) > e.sf(2_000.0));
    }

    #[test]
    fn constant_is_a_step() {
        let d = Constant::new(42.0);
        assert_eq!(d.cdf(41.9), 0.0);
        assert_eq!(d.cdf(42.0), 1.0);
        assert_eq!(d.quantile(0.3), 42.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 42.0);
    }

    #[test]
    fn shifted_translates_everything() {
        let d = Shifted::new(Exponential::with_mean(10.0), 100.0);
        assert_eq!(d.cdf(50.0), 0.0);
        assert!((d.quantile(0.5) - (100.0 + 10.0 * 2.0f64.ln())).abs() < 1e-9);
        assert!((d.mean().unwrap() - 110.0).abs() < 1e-12);
        check_quantile_inverts(&d, 1e-10);
    }

    #[test]
    fn mixture_normalises_weights_and_mixes() {
        let d = Mixture::of_two(
            3.0,
            Constant::new(10.0),
            1.0,
            Constant::new(1000.0),
        );
        // 75% mass at 10, 25% at 1000.
        assert!((d.cdf(10.0) - 0.75).abs() < 1e-12);
        assert!((d.cdf(999.0) - 0.75).abs() < 1e-12);
        assert!((d.cdf(1000.0) - 1.0).abs() < 1e-12);
        assert!(
            (d.mean().unwrap() - (0.75 * 10.0 + 0.25 * 1000.0)).abs() < 1e-9
        );
    }

    #[test]
    fn mixture_quantile_bisects_correctly() {
        let d = Mixture::of_two(
            0.9,
            Exponential::with_mean(10.0),
            0.1,
            Shifted::new(Exponential::with_mean(100.0), 50_000.0),
        );
        check_quantile_inverts(&d, 1e-6);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let frac_late = (0..n).filter(|_| d.sample(&mut rng) > 25_000.0).count()
            as f64
            / n as f64;
        assert!((frac_late - 0.1).abs() < 0.01, "late fraction {frac_late}");
    }

    #[test]
    fn samples_match_cdf_ks() {
        // One-sample KS sanity on the lognormal sampler.
        let d = LogNormal::new(4.0, 1.75);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut ks: f64 = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            let e = (i + 1) as f64 / n as f64;
            ks = ks.max((d.cdf(x) - e).abs());
        }
        // 1.63/sqrt(n) is the 1% critical value.
        assert!(ks < 1.63 / (n as f64).sqrt(), "KS statistic {ks}");
    }
}
