//! Empirical delay distribution fitted from observed samples.
//!
//! The delay analyzer (paper §I-D) does not know the true delay law: it
//! collects the delays of recently written points and evaluates the WA models
//! on their *empirical* distribution. [`Empirical`] provides the interpolated
//! ECDF, its inverse, a histogram-based density, and smoothed-bootstrap
//! sampling, all behind the common [`DelayDistribution`] trait.

use rand::Rng;
use rand::RngCore;

use crate::distribution::DelayDistribution;
use crate::stats::Histogram;

/// A distribution estimated from delay samples.
///
/// The CDF is the piecewise-linear interpolation of the empirical CDF using
/// the plotting positions `p_i = (i + 0.5)/n` at the order statistics, with
/// `F = 0` below the smallest and `F = 1` above the largest sample. The
/// quantile function is its exact inverse.
#[derive(Debug, Clone)]
pub struct Empirical {
    /// Order statistics (sorted, finite).
    sorted: Vec<f64>,
    /// Histogram used only for the density estimate.
    histogram: Histogram,
    mean: f64,
}

impl Empirical {
    /// Default number of histogram bins for the density estimate.
    pub const DEFAULT_BINS: usize = 64;

    /// Fits the empirical distribution to `samples`.
    ///
    /// Non-finite samples are dropped. Panics if no finite sample remains.
    pub fn from_samples(samples: &[f64]) -> Self {
        Self::from_samples_with_bins(samples, Self::DEFAULT_BINS)
    }

    /// Same as [`Empirical::from_samples`] with an explicit bin count for the
    /// density estimate.
    pub fn from_samples_with_bins(samples: &[f64], bins: usize) -> Self {
        let mut sorted: Vec<f64> =
            samples.iter().copied().filter(|x| x.is_finite()).collect();
        assert!(
            !sorted.is_empty(),
            "Empirical needs at least one finite sample"
        );
        sorted.sort_by(|a, b| a.total_cmp(b));
        let histogram = Histogram::from_sorted(&sorted, bins);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Self {
            sorted,
            histogram,
            mean,
        }
    }

    /// Number of samples backing the estimate.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when backed by zero samples (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Smallest observed delay.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observed delay.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// The histogram backing the density estimate.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Plotting position of order statistic `i`: `(i + 0.5)/n`.
    fn pos(&self, i: usize) -> f64 {
        (i as f64 + 0.5) / self.sorted.len() as f64
    }
}

impl DelayDistribution for Empirical {
    fn pdf(&self, x: f64) -> f64 {
        self.histogram.density(x)
    }

    fn cdf(&self, x: f64) -> f64 {
        let s = &self.sorted;
        let n = s.len();
        if x < s[0] {
            return 0.0;
        }
        if x >= s[n - 1] {
            return 1.0;
        }
        if n == 1 {
            // Single sample, x >= it was handled above; here x < it.
            return 0.0;
        }
        // First index with s[idx] > x; x lies in [s[idx-1], s[idx]).
        let idx = s.partition_point(|&v| v <= x);
        debug_assert!(idx >= 1 && idx < n);
        let (lo, hi) = (s[idx - 1], s[idx]);
        let (plo, phi) = (self.pos(idx - 1), self.pos(idx));
        if hi > lo {
            plo + (phi - plo) * (x - lo) / (hi - lo)
        } else {
            phi
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile: q={q} outside [0,1]");
        let s = &self.sorted;
        let n = s.len();
        if n == 1 {
            return s[0];
        }
        let q = q.clamp(self.pos(0), self.pos(n - 1));
        let t = q * n as f64 - 0.5; // inverse of pos()
        let i = (t.floor() as usize).min(n - 2);
        let frac = t - i as f64;
        s[i] + frac * (s[i + 1] - s[i])
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Smoothed bootstrap: inverse-transform on the interpolated ECDF.
        self.quantile(rng.gen::<f64>())
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mean)
    }

    fn label(&self) -> String {
        format!(
            "Empirical(n={}, mean={:.1}, max={:.1})",
            self.sorted.len(),
            self.mean,
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parametric::LogNormal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_and_quantile_are_inverse() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let e = Empirical::from_samples(&samples);
        for &q in &[0.05, 0.2, 0.5, 0.8, 0.95] {
            let x = e.quantile(q);
            assert!(
                (e.cdf(x) - q).abs() < 1e-9,
                "q={q}, x={x}, cdf={}",
                e.cdf(x)
            );
        }
    }

    #[test]
    fn cdf_is_zero_below_and_one_above() {
        let e = Empirical::from_samples(&[10.0, 20.0, 30.0]);
        assert_eq!(e.cdf(5.0), 0.0);
        assert_eq!(e.cdf(30.0), 1.0);
        assert_eq!(e.cdf(100.0), 1.0);
    }

    #[test]
    fn duplicates_do_not_break_interpolation() {
        let e = Empirical::from_samples(&[5.0, 5.0, 5.0, 10.0]);
        let c = e.cdf(5.0);
        assert!(c > 0.0 && c < 1.0);
        assert!(e.cdf(7.5) > c);
        assert!((e.quantile(0.99) - 10.0).abs() < 1.0);
    }

    #[test]
    fn single_sample_degenerates_to_point_mass() {
        let e = Empirical::from_samples(&[42.0]);
        assert_eq!(e.cdf(41.0), 0.0);
        assert_eq!(e.cdf(42.0), 1.0);
        assert_eq!(e.quantile(0.5), 42.0);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let e = Empirical::from_samples(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.max(), 2.0);
    }

    #[test]
    fn fitted_empirical_tracks_true_lognormal() {
        let d = LogNormal::new(4.0, 1.5);
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> =
            (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let e = Empirical::from_samples(&samples);
        for &x in &[10.0, 50.0, 150.0, 500.0, 2000.0] {
            assert!(
                (e.cdf(x) - d.cdf(x)).abs() < 0.01,
                "x={x}: empirical {} vs true {}",
                e.cdf(x),
                d.cdf(x)
            );
        }
        assert!((e.mean().unwrap() / d.mean().unwrap() - 1.0).abs() < 0.2);
    }

    #[test]
    fn sampling_resamples_the_data_range() {
        let e = Empirical::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = e.sample(&mut rng);
            assert!((1.0..=4.0).contains(&x));
        }
    }
}
