//! The industrial use case (paper §VI): a vehicle-fleet monitoring store
//! that adapts its buffering policy as network conditions change.
//!
//! The stream starts as clean 1 Hz telemetry, then the fleet drives through
//! patchy coverage (batched re-sends, long systematic delays), then
//! stabilises again. The adaptive engine re-tunes at each shift; the example
//! prints every decision and the final WA against the two static baselines.
//!
//! ```text
//! cargo run --release -p seplsm --example vehicle_fleet
//! ```

use seplsm::{
    AdaptiveConfig, AdaptiveOpen, DataPoint, EngineConfig, LsmEngine,
    OpenOptions, Policy, Result, VehicleWorkload,
};

fn static_wa(points: &[DataPoint], policy: Policy) -> Result<f64> {
    let mut engine = LsmEngine::in_memory(EngineConfig::new(policy))?;
    for p in points {
        engine.append(*p)?;
    }
    Ok(engine.metrics().write_amplification())
}

fn main() -> Result<()> {
    // Three coverage regimes, stitched into one stream.
    let calm_a = VehicleWorkload {
        points: 60_000,
        outage_start_prob: 0.0002,
        seed: 1,
        ..VehicleWorkload::default()
    };
    let patchy = VehicleWorkload {
        points: 60_000,
        outage_start_prob: 0.02,
        seed: 2,
        ..VehicleWorkload::default()
    };
    let calm_b = VehicleWorkload {
        points: 60_000,
        outage_start_prob: 0.0002,
        seed: 3,
        ..VehicleWorkload::default()
    };
    let mut stream = Vec::new();
    let mut offset = 0i64;
    for segment in [&calm_a, &patchy, &calm_b] {
        let mut pts = segment.generate();
        for p in &mut pts {
            p.gen_time += offset;
            p.arrival_time += offset;
        }
        offset += (segment.points as i64 + 1) * segment.delta_t;
        stream.extend(pts);
    }
    println!(
        "fleet stream: {} points over 3 coverage regimes",
        stream.len()
    );

    let mut engine =
        OpenOptions::new(EngineConfig::new(Policy::conventional(512)))
            .adaptive(AdaptiveConfig::new())?;
    for p in &stream {
        engine.append(*p)?;
    }

    println!("\nadaptive decisions:");
    for t in engine.tunes() {
        println!(
            "  after {:>7} points: r_c={:.3} r_s*={:.3} -> {}",
            t.at_user_points,
            t.r_c,
            t.r_s_star,
            t.decision.name()
        );
    }

    let adaptive_wa = engine.engine().metrics().write_amplification();
    let wa_c = static_wa(&stream, Policy::conventional(512))?;
    let wa_s = static_wa(&stream, Policy::separation_even(512)?)?;
    println!("\nfinal write amplification:");
    println!("  pi_c         : {wa_c:.3}");
    println!("  pi_s(n/2)    : {wa_s:.3}");
    println!("  pi_adaptive  : {adaptive_wa:.3}");
    Ok(())
}
