//! Quickstart: open an engine, write slightly out-of-order telemetry,
//! query it back, and inspect the write-amplification metrics.
//!
//! ```text
//! cargo run --release -p seplsm --example quickstart
//! ```

use seplsm::{DataPoint, EngineConfig, LsmEngine, Policy, Result, TimeRange};

fn main() -> Result<()> {
    // A leveled LSM engine with the conventional policy: one 512-point
    // MemTable, 512-point SSTables (the paper's defaults).
    let mut engine =
        LsmEngine::in_memory(EngineConfig::new(Policy::conventional(512)))?;

    // Sensor readings once per 50 ms. Every tenth reading is delayed long
    // enough to arrive out of order.
    let mut pending: Option<DataPoint> = None;
    for i in 0..10_000i64 {
        let gen_time = i * 50;
        if i % 10 == 9 {
            // This reading takes the slow path; it arrives three ticks late.
            pending = Some(DataPoint::new(gen_time, gen_time + 150, i as f64));
        } else {
            engine.append(DataPoint::new(gen_time, gen_time + 2, i as f64))?;
        }
        if let Some(p) = pending.take_if(|p| p.arrival_time <= gen_time) {
            engine.append(p)?;
        }
    }
    if let Some(p) = pending {
        engine.append(p)?;
    }

    // Range query over generation time; the engine merges MemTables and the
    // on-disk run and reports what the read cost.
    let (points, stats) = engine.query(TimeRange::new(100_000, 105_000))?;
    println!("queried [100000, 105000]: {} points", points.len());
    println!(
        "  tables read: {}, disk points scanned: {}, read amplification: {:.2}",
        stats.tables_read,
        stats.disk_points_scanned,
        stats.read_amplification().unwrap_or(0.0),
    );

    let m = engine.metrics();
    println!("ingestion totals:");
    println!("  user points:        {}", m.user_points);
    println!("  disk points:        {}", m.disk_points_written);
    println!("  flushes:            {}", m.flushes);
    println!("  compactions:        {}", m.compactions);
    println!("  write amplification: {:.3}", m.write_amplification());
    Ok(())
}
