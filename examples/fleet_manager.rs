//! Fleet-scale storage: many series, per-series adaptive policies, and the
//! compressed block format.
//!
//! A monitoring backend hosts several sensor channels per vehicle. Channels
//! behave differently — GPS pushes clean 1 Hz fixes, the CAN-bus gateway
//! batches under patchy coverage — so one global policy cannot fit. The
//! fleet engine tunes each series independently and stores everything in
//! compressed SSTables.
//!
//! ```text
//! cargo run --release -p seplsm --example fleet_manager
//! ```

use std::sync::Arc;

use seplsm::{
    AdaptiveConfig, AdaptiveOpen, ArbiterConfig, DataPoint, EncodeOptions,
    EngineConfig, LogNormal, MemStore, MultiOpenOptions, Policy, SeriesId,
    TimeRange,
};
use seplsm_dist::DelayDistribution;

fn main() -> seplsm::Result<()> {
    let store = Arc::new(MemStore::with_options(EncodeOptions::compressed()));
    // One fleet-wide budget of 1024 points: the arbiter hands each channel
    // a slice (hot channels grow, cold ones shrink toward the floor) and
    // the adaptive controller retunes each channel against its current
    // slice.
    let mut fleet =
        MultiOpenOptions::new(EngineConfig::new(Policy::conventional(256)))
            .store(store.clone())
            .arbiter(ArbiterConfig::new(1024))
            .adaptive(AdaptiveConfig::new())?;

    // Three channels with very different delay behaviour.
    let channels: [(&str, SeriesId, LogNormal); 3] = [
        ("gps (clean)", SeriesId(1), LogNormal::new(1.5, 0.4)), // ~4 ms
        (
            "engine temp (jittery)",
            SeriesId(2),
            LogNormal::new(4.5, 1.2),
        ),
        (
            "can gateway (chaotic)",
            SeriesId(3),
            LogNormal::new(6.5, 1.8),
        ),
    ];
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(2026)
    };

    let points_per_channel = 20_000usize;
    for (_, series, dist) in &channels {
        let mut pts: Vec<DataPoint> = (0..points_per_channel)
            .map(|i| {
                DataPoint::with_delay(
                    (i as i64 + 1) * 50,
                    dist.sample(&mut rng).round() as i64,
                    (i % 100) as f64,
                )
            })
            .collect();
        pts.sort_by_key(|p| p.arrival_time);
        for p in pts {
            fleet.append(*series, p)?;
        }
    }

    println!("per-series outcomes:");
    for (label, series, _) in &channels {
        let engine = fleet.engine().engine(*series).expect("series exists");
        println!(
            "  {label:<24} policy {:<34} WA {:.3} ({} tunes)",
            engine.policy().name(),
            engine.metrics().write_amplification(),
            fleet.tunes(*series),
        );
    }

    if let Some(stats) = fleet.engine().arbiter_stats() {
        println!(
            "\narbiter: {} rebalances, {} resizes, {} points held back \
             for the cache",
            stats.rounds, stats.resizes, stats.cache_share
        );
    }

    let agg = fleet.engine().metrics();
    println!(
        "\nfleet totals: {} series, {} points, WA {:.3}",
        agg.series,
        agg.user_points,
        agg.write_amplification()
    );
    println!(
        "compressed store size: {:.2} bytes/point",
        store.encoded_bytes() as f64 / agg.disk_points_written as f64
    );

    // Queries stay per-series.
    let (pts, stats) = fleet
        .engine()
        .query(SeriesId(3), TimeRange::new(100_000, 110_000))?;
    println!(
        "\nsample query on the chaotic channel: {} points, {} tables read",
        pts.len(),
        stats.tables_read
    );
    Ok(())
}
