//! Analyze a write workload and decide: separation or not?
//!
//! Mirrors the paper's deployment story: collect the delays of a workload,
//! fit the empirical distribution, run Algorithm 1, and report the predicted
//! WA of `π_c` vs the best `π_s(n_seq)` — then verify the decision by
//! actually ingesting the workload under both policies.
//!
//! ```text
//! cargo run --release -p seplsm --example analyze_workload
//! ```

use std::sync::Arc;

use seplsm::{
    tune, DelayDistribution, Empirical, EngineConfig, LsmEngine, Policy,
    Result, SyntheticWorkload, TunerOptions, WaModel,
};
use seplsm_dist::{LogNormal, Mixture, Shifted};

fn measure(points: &[seplsm::DataPoint], policy: Policy) -> Result<f64> {
    let mut engine = LsmEngine::in_memory(EngineConfig::new(policy))?;
    for p in points {
        engine.append(*p)?;
    }
    Ok(engine.metrics().write_amplification())
}

fn main() -> Result<()> {
    // An IoT workload where 8% of transmissions go through a slow relay:
    // the skewed-delay situation in which separation tends to win.
    let delays = Mixture::of_two(
        0.92,
        LogNormal::new(3.0, 0.6),
        0.08,
        Shifted::new(LogNormal::new(5.0, 1.0), 4_000.0),
    );
    let workload = SyntheticWorkload::new(50, delays, 200_000, 42);
    let dataset = workload.generate();
    println!("workload: {} points, delta_t = 50 ms", dataset.len());

    // 1. The analyzer's view: only the observed delays, no ground truth.
    let observed: Vec<f64> = dataset.iter().map(|p| p.delay() as f64).collect();
    let empirical = Empirical::from_samples(&observed);
    println!(
        "observed delays: median {:.0} ms, p99 {:.0} ms",
        empirical.quantile(0.5),
        empirical.quantile(0.99)
    );

    // 2. Algorithm 1 on the fitted distribution, budget n = 512.
    let model = WaModel::new(Arc::new(empirical), 50.0, 512);
    let outcome = tune(&model, TunerOptions::exhaustive_with_curve())?;
    println!(
        "model: r_c = {:.3}, min r_s = {:.3} at n_seq = {}",
        outcome.r_c, outcome.r_s_star, outcome.best_n_seq
    );
    println!("decision: {}", outcome.decision.name());

    // 3. Ground truth: ingest under both policies and compare.
    let wa_c = measure(&dataset, Policy::conventional(512))?;
    let wa_s = measure(&dataset, Policy::separation(512, outcome.best_n_seq)?)?;
    println!("measured: pi_c WA = {wa_c:.3}, pi_s(n̂*) WA = {wa_s:.3}");
    let model_right = (outcome.r_s_star < outcome.r_c) == (wa_s < wa_c);
    println!("the model picked the lower-WA policy: {model_right}");
    Ok(())
}
