//! Explore how the `r_s(n_seq)` curve — and the separation-vs-conventional
//! decision — move with workload disorder.
//!
//! Prints an ASCII rendition of the paper's Fig. 7 U-curve for three
//! disorder levels and shows where Algorithm 1 places the knob.
//!
//! ```text
//! cargo run --release -p seplsm --example policy_explorer
//! ```

use std::sync::Arc;

use seplsm::{tune, LogNormal, Result, TunerOptions, WaModel};

fn render_curve(model: &WaModel, n: usize) -> Result<()> {
    let outcome = tune(model, TunerOptions::exhaustive_with_curve())?;
    let max_wa = outcome
        .curve
        .iter()
        .map(|&(_, wa)| wa)
        .fold(outcome.r_c, f64::max);
    println!(
        "  r_c = {:.3}   min r_s = {:.3} at n_seq = {}   decision: {}",
        outcome.r_c,
        outcome.r_s_star,
        outcome.best_n_seq,
        outcome.decision.name()
    );
    for (n_seq, wa) in outcome.curve.iter().step_by((n / 16).max(1)) {
        let width = ((wa / max_wa) * 48.0).round() as usize;
        let marker = if *n_seq == outcome.best_n_seq {
            '*'
        } else {
            ' '
        };
        println!("  n_seq {n_seq:>4} | {}{marker} {wa:.3}", "#".repeat(width));
    }
    Ok(())
}

fn main() -> Result<()> {
    let n = 512;
    for (label, mu, sigma, dt) in [
        ("mild disorder: LogNormal(2, 0.5), dt=50", 2.0, 0.5, 50.0),
        ("moderate disorder: LogNormal(5, 2), dt=50", 5.0, 2.0, 50.0),
        ("severe disorder: LogNormal(5, 2), dt=10", 5.0, 2.0, 10.0),
    ] {
        println!("\n{label}");
        let model = WaModel::new(Arc::new(LogNormal::new(mu, sigma)), dt, n);
        render_curve(&model, n)?;
    }
    println!(
        "\nReading the curves: with mild disorder pi_c is already near WA=1 \
         and separation only adds overhead; as disorder grows the U-curve \
         drops below r_c and the tuner switches to pi_s with the minimising \
         n_seq."
    );
    Ok(())
}
