#!/bin/bash
# Regenerates every table/figure; outputs under results/.
set -x
cd /root/repo
bash scripts/ci.sh || exit 1
R=results
run() { name=$1; shift; ./target/release/$name "$@" --json $R/$name.json > $R/$name.txt 2>&1; }
run fig05 --points 200000
run fig08 --points 30000
run fig07 --points 300000
run fig09 --points 150000
run fig10 --segment 100000
run fig11 --points 30000
run fig12 --points 60000
run fig13 --points 60000
run fig14 --points 60000
./target/release/fig15 --points 40000 > $R/fig15.txt 2>&1
run fig16 --points 200000
run fig17 --segment 60000
run fig18 --points 30000
run fig19 --points 200000
run fig20 --points 120000
run table03 --points 200000
./target/release/ablation_sstable_size --points 120000 > $R/ablation_sstable_size.txt 2>&1
./target/release/ablation_zeta > $R/ablation_zeta.txt 2>&1
./target/release/ablation_block_reads --points 60000 > $R/ablation_block_reads.txt 2>&1
./target/release/ablation_tuner > $R/ablation_tuner.txt 2>&1
./target/release/perf_baseline --points 20000 --series 8 --workers 4 --out-dir $R > $R/perf_baseline.txt 2>&1
echo ALL-EXPERIMENTS-DONE
