#!/bin/bash
# CI gate: format, lint, build, test. Offline-friendly (uses vendored deps;
# never touches the network) and tolerant of missing optional tools.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

if cargo fmt --version >/dev/null 2>&1; then
  echo "== cargo fmt --check =="
  cargo fmt --all --check
else
  echo "== cargo fmt not installed; skipping format check =="
fi

if cargo clippy --version >/dev/null 2>&1; then
  echo "== cargo clippy =="
  cargo clippy --workspace --all-targets --offline -- -D warnings
else
  echo "== cargo clippy not installed; skipping lint =="
fi

# seplint emits machine-readable findings so a CI failure names the exact
# file/line/rule instead of burying it in the build log.
echo "== seplint (R1-R9 storage-kernel contracts) =="
SEPLINT_JSON="$(mktemp)"
if cargo run -q -p seplint --offline -- --format json . >"$SEPLINT_JSON"; then
  rm -f "$SEPLINT_JSON"
else
  python3 - "$SEPLINT_JSON" <<'PYEOF'
import json, sys
findings = json.load(open(sys.argv[1]))
for f in findings:
    print(f"seplint: {f['file']}:{f['line']}: {f['rule']}: {f['message']}")
print(f"seplint: {len(findings)} violation(s)")
PYEOF
  rm -f "$SEPLINT_JSON"
  exit 1
fi

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test =="
cargo test -q --workspace --offline

# Fault-injection lane: replays every engine workload with a simulated crash
# at every I/O operation (seeded FaultPlan — fully deterministic, no clock,
# no RNG at runtime) and checks the durability contract after each recovery.
echo "== fault injection (crash schedules) =="
cargo test -q -p seplsm --test crash_schedules --offline

# Observability lane: a short instrumented bench run must emit a JSONL
# event trace that parses line-by-line, and — because sinks run on the
# deterministic logical clock — two runs of the same seeded workload must
# produce byte-identical traces.
echo "== observability (JSONL trace determinism) =="
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
cargo run -q --release -p seplsm-bench --bin trace_run --offline -- \
  --points 5000 --seed 42 --trace "$TRACE_DIR/a.jsonl" >/dev/null
cargo run -q --release -p seplsm-bench --bin trace_run --offline -- \
  --points 5000 --seed 42 --trace "$TRACE_DIR/b.jsonl" >/dev/null
cmp "$TRACE_DIR/a.jsonl" "$TRACE_DIR/b.jsonl" \
  || { echo "trace not deterministic"; exit 1; }
python3 - "$TRACE_DIR/a.jsonl" <<'PYEOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "empty trace"
kinds = set()
for i, line in enumerate(lines):
    obj = json.loads(line)
    assert obj["seq"] == i, f"seq gap at line {i}"
    kinds.add(obj["event"])
assert "flush_finished" in kinds, kinds
assert "point_classified" in kinds, kinds
print(f"trace OK: {len(lines)} events, {len(kinds)} kinds")
PYEOF

# Perf-smoke lane: a tiny perf_baseline run must emit the three BENCH_*.json
# reports, each parseable, with a warm-cache hit rate above zero, the
# fleet determinism check (baked into the bench itself) passing, and the
# v3 cold-read lane actually pruning tables and fetching fewer bytes than
# the v2 whole-file path.
echo "== perf smoke (cache + fleet flush pool) =="
PERF_DIR="$(mktemp -d)"
cargo run -q --release -p seplsm-bench --bin perf_baseline --offline -- \
  --points 2000 --series 4 --workers 2 --passes 4 \
  --out-dir "$PERF_DIR" >/dev/null
python3 - "$PERF_DIR" <<'PYEOF'
import json, sys, os
d = sys.argv[1]
ingest = json.load(open(os.path.join(d, "BENCH_ingest.json")))
query = json.load(open(os.path.join(d, "BENCH_query.json")))
compaction = json.load(open(os.path.join(d, "BENCH_compaction.json")))
assert ingest["deterministic"] is True, ingest
# Admission-control lane: the burst pass must report tail latency and
# genuinely stall (with the L0 depth still bounded by the stop watermark);
# the light pass must never stall.
for key in ("p99", "p999", "stall_ticks", "max_l0_depth"):
    assert key in ingest, f"missing ingest key {key}"
assert ingest["stall_ticks"] > 0, ingest["burst"]
assert ingest["burst"]["stalls"] > 0, ingest["burst"]
assert ingest["max_l0_depth"] <= ingest["stop_watermark"], ingest["burst"]
assert ingest["light"]["stall_ticks"] == 0, ingest["light"]
assert query["cache_on"]["hit_rate"] > 0, query
assert query["disk_byte_reduction"] > 1, query
assert query["tables_pruned"] > 0, query
assert query["cold_byte_reduction"] > 1, query
assert query["cold_query_bytes"]["v3"] < query["cold_query_bytes"]["v2"], query
# Aggregation-pushdown lane: folding index pre-aggregates must actually
# happen and must beat decode-and-fold on bytes, with bit-identical answers
# (the bench fails outright on divergence, so the flag is always true here).
assert query["blocks_folded"] > 0, query
assert query["agg_byte_reduction"] > 1, query
assert query["agg_results_bit_identical"] is True, query
assert compaction["cache"]["invalidated_blocks"] >= 0, compaction
# Multi-tenant skew lane: the arbiter must have grown the hot series past
# every cold neighbour, and the adaptive controller must have retuned at
# least one series online against its arbiter-assigned slice.
for key in ("hot_series_capacity", "cold_series_capacity",
            "rebalances", "retunes"):
    assert key in ingest, f"missing ingest key {key}"
assert ingest["hot_series_capacity"] > ingest["cold_series_capacity"], ingest
assert ingest["retunes"] > 0, ingest
assert ingest["rebalances"] > 0, ingest
print(f"perf smoke OK: burst p99 {ingest['p99']:.1f}us with "
      f"{ingest['stall_ticks']} stall ticks "
      f"(depth {ingest['max_l0_depth']}/{ingest['stop_watermark']}), "
      f"query hit rate "
      f"{query['cache_on']['hit_rate']:.2f}, "
      f"{query['disk_byte_reduction']:.1f}x fewer disk bytes, "
      f"cold v3 {query['cold_byte_reduction']:.1f}x fewer bytes, "
      f"agg pushdown {query['agg_byte_reduction']:.1f}x fewer bytes "
      f"({query['blocks_folded']} blocks folded), "
      f"{query['tables_pruned']} tables pruned, skew "
      f"{ingest['hot_series_capacity']}/{ingest['cold_series_capacity']} "
      f"hot/cold capacity with {ingest['retunes']} online retune(s)")
PYEOF
rm -rf "$PERF_DIR"

# Opt-in undefined-behaviour lane: MIRI=1 scripts/ci.sh runs the kernel's
# memtable/buffer unit tests under miri when the component is installed.
# The workspace forbids unsafe code (seplint R2), so this mainly guards the
# vendored shims.
if [[ "${MIRI:-0}" == "1" ]]; then
  if cargo miri --version >/dev/null 2>&1; then
    echo "== cargo miri test (opt-in) =="
    cargo miri test -q -p seplsm-lsm --lib --offline -- memtable buffer
  else
    echo "== MIRI=1 requested but cargo-miri is not installed; skipping =="
  fi
fi

# Opt-in data-race lane: TSAN=1 scripts/ci.sh rebuilds the flush-pool and
# cache tests under ThreadSanitizer (nightly-only -Zsanitizer=thread) — the
# runtime complement to seplint R8's static lock discipline. Tolerant-skip
# like the MIRI lane: a stable-only toolchain just reports and moves on.
if [[ "${TSAN:-0}" == "1" ]]; then
  TSAN_TARGET="$(rustc -vV | sed -n 's/^host: //p')"
  # -Zbuild-std (needed so std itself is TSAN-instrumented, avoiding false
  # positives from uninstrumented Arc/Mutex internals) requires the nightly
  # rust-src component on disk; installing it needs the network, so treat
  # its absence exactly like a missing nightly.
  if rustc +nightly --version >/dev/null 2>&1 \
     && [[ -d "$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library" ]]; then
    echo "== cargo test under ThreadSanitizer (opt-in) =="
    RUSTFLAGS="-Zsanitizer=thread" \
    RUSTDOCFLAGS="-Zsanitizer=thread" \
    TSAN_OPTIONS="halt_on_error=1" \
    cargo +nightly test -q -p seplsm-lsm --lib --offline \
      -Zbuild-std --target "$TSAN_TARGET" \
      --target-dir target/tsan -- multi:: cache:: background:: \
      || { echo "ThreadSanitizer lane failed"; exit 1; }
  else
    echo "== TSAN=1 requested but nightly + rust-src are not installed; skipping =="
  fi
fi

echo CI-OK
