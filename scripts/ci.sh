#!/bin/bash
# CI gate: format, lint, build, test. Offline-friendly (uses vendored deps;
# never touches the network) and tolerant of missing optional tools.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

if cargo fmt --version >/dev/null 2>&1; then
  echo "== cargo fmt --check =="
  cargo fmt --all --check
else
  echo "== cargo fmt not installed; skipping format check =="
fi

if cargo clippy --version >/dev/null 2>&1; then
  echo "== cargo clippy =="
  cargo clippy --workspace --all-targets --offline -- -D warnings
else
  echo "== cargo clippy not installed; skipping lint =="
fi

echo "== seplint (R1-R6 storage-kernel contracts) =="
cargo run -q -p seplint --offline -- .

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test =="
cargo test -q --workspace --offline

# Fault-injection lane: replays every engine workload with a simulated crash
# at every I/O operation (seeded FaultPlan — fully deterministic, no clock,
# no RNG at runtime) and checks the durability contract after each recovery.
echo "== fault injection (crash schedules) =="
cargo test -q -p seplsm --test crash_schedules --offline

# Opt-in undefined-behaviour lane: MIRI=1 scripts/ci.sh runs the kernel's
# memtable/buffer unit tests under miri when the component is installed.
# The workspace forbids unsafe code (seplint R2), so this mainly guards the
# vendored shims.
if [[ "${MIRI:-0}" == "1" ]]; then
  if cargo miri --version >/dev/null 2>&1; then
    echo "== cargo miri test (opt-in) =="
    cargo miri test -q -p seplsm-lsm --lib --offline -- memtable buffer
  else
    echo "== MIRI=1 requested but cargo-miri is not installed; skipping =="
  fi
fi

echo CI-OK
