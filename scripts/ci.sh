#!/bin/bash
# CI gate: format, lint, build, test. Offline-friendly (uses vendored deps;
# never touches the network) and tolerant of missing optional tools.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

if cargo fmt --version >/dev/null 2>&1; then
  echo "== cargo fmt --check =="
  cargo fmt --all --check
else
  echo "== cargo fmt not installed; skipping format check =="
fi

if cargo clippy --version >/dev/null 2>&1; then
  echo "== cargo clippy =="
  cargo clippy --workspace --all-targets --offline -- -D warnings
else
  echo "== cargo clippy not installed; skipping lint =="
fi

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo CI-OK
