//! Vendored stand-in for the `bytes` crate.
//!
//! Provides contiguous-buffer implementations of [`Bytes`], [`BytesMut`] and
//! the [`Buf`]/[`BufMut`] traits covering the API surface the workspace
//! uses. `Bytes` is an `Arc`-backed slice so clones and sub-slices are cheap,
//! matching the sharing semantics the table store relies on.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Read access to a contiguous byte buffer with a moving cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// `true` while unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice out of bounds: {} < {}",
            self.remaining(),
            dst.len()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A cheaply cloneable, immutable, shared byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Appends `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }

    /// Clears the buffer, keeping the allocation.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_i64_le(-12345);
        b.put_slice(&[1, 2, 3]);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -12345);
        let mut rest = [0u8; 3];
        r.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2, 3]);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slices_share_backing_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(1..).as_ref(), &[3, 4]);
    }

    #[test]
    fn slice_buf_advances() {
        let mut s: &[u8] = &[9, 8, 7];
        assert_eq!(s.get_u8(), 9);
        assert_eq!(s.remaining(), 2);
    }
}
