//! Vendored stand-in for `crossbeam`, backed by `std::sync::mpsc`.
//!
//! Only the `channel::bounded` surface used by the workspace is provided.
//! `std::sync::mpsc::sync_channel` gives the same blocking-on-full semantics
//! as a crossbeam bounded channel for the single-producer/single-consumer
//! pattern the engine uses.

pub mod channel {
    pub use std::sync::mpsc::{
        RecvError, SendError, TryRecvError, TrySendError,
    };

    /// Sending half of a bounded channel.
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    /// Creates a bounded channel with room for `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Blocks until space is available, then enqueues `value`. Errors
        /// when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Non-blocking send: fails with [`TrySendError::Full`] (returning
        /// the value) when the channel is at capacity, instead of blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Errors when every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator over messages; ends when every sender is gone.
        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = std::sync::mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = std::sync::mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_round_trips_in_order() {
        let (tx, rx) = channel::bounded(4);
        for i in 0..4 {
            tx.send(i).expect("send");
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_send_reports_full_without_blocking() {
        let (tx, rx) = channel::bounded(1);
        tx.try_send(1).expect("fits");
        assert!(matches!(
            tx.try_send(2),
            Err(channel::TrySendError::Full(2))
        ));
        assert_eq!(rx.recv().expect("recv"), 1);
    }

    #[test]
    fn dropping_all_senders_ends_iteration() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.into_iter().count(), 0);
    }
}
