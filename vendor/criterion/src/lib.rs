//! Vendored stand-in for `criterion`.
//!
//! Provides the macro/builder API the workspace's benches use, backed by a
//! deliberately small timing loop: a short warm-up, then `sample_size`
//! timed samples whose median is reported. No statistics, plots or saved
//! baselines — just enough to run `cargo bench` offline and eyeball
//! regressions.

use std::time::Instant;

pub use std::hint::black_box;

/// Throughput annotation; printed alongside the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched`; ignored by this harness.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Prints the final summary (a no-op here).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` and prints the median sample.
    pub fn bench_function<F>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        // One warm-up pass, then timed samples.
        for i in 0..=self.sample_size {
            let mut b = Bencher { elapsed_ns: 0.0 };
            f(&mut b);
            if i > 0 {
                samples.push(b.elapsed_ns);
            }
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!("  ({:.2} Melem/s)", n as f64 / median * 1e3)
            }
            Throughput::Bytes(n) => {
                format!(
                    "  ({:.2} MiB/s)",
                    n as f64 / median * 1e9 / (1 << 20) as f64
                )
            }
        });
        println!(
            "{}/{:<32} {:>12.1} ns/iter{}",
            self.name,
            id,
            median,
            rate.unwrap_or_default()
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs the measured routine.
pub struct Bencher {
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `f`, amortised over enough iterations to be measurable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate an iteration count aiming at ~1 ms per sample.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().as_nanos().max(1);
        let iters = (1_000_000 / one).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_ns = 0u128;
        let iters = 3u32;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total_ns as f64 / f64::from(iters);
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
