//! Vendored stand-in for `serde_json`.
//!
//! Implements the subset the workspace uses: a [`Value`] tree built with the
//! [`json!`] macro, [`to_string_pretty`] for report export, and [`from_str`]
//! for reading reports back. Object key order is preserved (insertion
//! order), which keeps exported reports stable across runs.

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integers and floats are kept distinct so integers
/// round-trip exactly.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A float.
    Float(f64),
}

impl Number {
    fn as_f64(self) -> f64 {
        match self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            (Number::UInt(a), Number::UInt(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Member access; returns `Null` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => {
                map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as `f64` when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `i64` when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(v)) => Some(*v),
            Value::Number(Number::UInt(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice when it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::Int(v as i64))
            }
        }
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::Int(*other as i64))
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(v)),
        }
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        matches!(self, Value::Number(n) if n.as_f64() == *other as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::Float(v as f64))
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if n.as_f64() == *other)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Self {
        v.clone()
    }
}

/// Serialization / parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::UInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if v.is_finite() => {
            // `{:?}` keeps a trailing `.0` on whole floats, so floats stay
            // floats across a round trip.
            out.push_str(&format!("{v:?}"));
        }
        // JSON has no NaN/Infinity; match serde_json's `null` behavior.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Renders `value` as human-readable JSON with two-space indentation.
///
/// # Errors
/// Never fails; the `Result` mirrors the real API so `?` call sites compile.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// Renders `value` compactly.
///
/// # Errors
/// Never fails; the `Result` mirrors the real API.
pub fn to_string(value: &Value) -> Result<String, Error> {
    fn compact(out: &mut String, v: &Value) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    compact(out, item);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, item)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    compact(out, item);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    compact(&mut out, value);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err("invalid keyword"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .unwrap_or(char::REPLACEMENT_CHARACTER),
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
/// Malformed input.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Builds a [`Value`] from JSON-ish syntax. Object keys must be string
/// literals; values may be nested `{...}` / `[...]` literals or any
/// expression convertible into a `Value`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        // The muncher pushes element-by-element; `vec![]` can't express it.
        #[allow(clippy::vec_init_then_push)]
        {
            let mut items: Vec<$crate::Value> = Vec::new();
            $crate::json_array_inner!(items; $($tt)*);
            $crate::Value::Array(items)
        }
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(clippy::vec_init_then_push)]
        {
            let mut map: Vec<(String, $crate::Value)> = Vec::new();
            $crate::json_object_inner!(map; $($tt)*);
            $crate::Value::Object(map)
        }
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal muncher for [`json!`] object bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_inner {
    ($map:ident;) => {};
    ($map:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $map.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_object_inner!($map; $($rest)*);
    };
    ($map:ident; $key:literal : { $($inner:tt)* }) => {
        $map.push(($key.to_string(), $crate::json!({ $($inner)* })));
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $map.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_object_inner!($map; $($rest)*);
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ]) => {
        $map.push(($key.to_string(), $crate::json!([ $($inner)* ])));
    };
    ($map:ident; $key:literal : null , $($rest:tt)*) => {
        $map.push(($key.to_string(), $crate::Value::Null));
        $crate::json_object_inner!($map; $($rest)*);
    };
    ($map:ident; $key:literal : null) => {
        $map.push(($key.to_string(), $crate::Value::Null));
    };
    ($map:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $map.push(($key.to_string(), $crate::Value::from($value)));
        $crate::json_object_inner!($map; $($rest)*);
    };
    ($map:ident; $key:literal : $value:expr) => {
        $map.push(($key.to_string(), $crate::Value::from($value)));
    };
}

/// Internal muncher for [`json!`] array bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_inner {
    ($items:ident;) => {};
    ($items:ident; { $($inner:tt)* } , $($rest:tt)*) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_array_inner!($items; $($rest)*);
    };
    ($items:ident; { $($inner:tt)* }) => {
        $items.push($crate::json!({ $($inner)* }));
    };
    ($items:ident; [ $($inner:tt)* ] , $($rest:tt)*) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_array_inner!($items; $($rest)*);
    };
    ($items:ident; [ $($inner:tt)* ]) => {
        $items.push($crate::json!([ $($inner)* ]));
    };
    ($items:ident; $value:expr , $($rest:tt)*) => {
        $items.push($crate::Value::from($value));
        $crate::json_array_inner!($items; $($rest)*);
    };
    ($items:ident; $value:expr) => {
        $items.push($crate::Value::from($value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_structures() {
        let inner = vec![Value::from(1), Value::from(2)];
        let v = json!({
            "a": 1,
            "b": {"x": 1.5, "y": "s"},
            "c": inner,
            "d": [1, 2.5, "three"],
            "e": null,
        });
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"]["x"], 1.5);
        assert_eq!(v["b"]["y"], "s");
        assert_eq!(v["c"][1], 2);
        assert_eq!(v["d"][2], "three");
        assert_eq!(v["e"], Value::Null);
    }

    #[test]
    fn pretty_round_trips() {
        let v = json!({
            "int": 7,
            "float": 2.0,
            "neg": -1.25,
            "s": "he\"llo\n",
            "arr": [1, 2, 3],
            "obj": {"k": true},
        });
        let text = to_string_pretty(&v).expect("pretty");
        let back = from_str(&text).expect("parse");
        assert_eq!(back, v);
        // Whole floats keep their float-ness across the round trip.
        assert!(matches!(back["float"], Value::Number(Number::Float(_))));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn integer_comparison_works() {
        let v = from_str("{\"x\": 1}").expect("parse");
        assert_eq!(v["x"], 1);
    }
}
