//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;

use rand::{Rng, RngCore};

use crate::Strategy;

/// A half-open size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut dyn RngCore) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

/// Strategy for `Vec<S::Value>`; see [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length lies in `size`.
pub fn vec<S: Strategy>(
    element: S,
    size: impl Into<SizeRange>,
) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>`; see [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates sets whose cardinality lies in `size`; the element strategy
/// must be able to produce enough distinct values.
pub fn btree_set<S>(
    element: S,
    size: impl Into<SizeRange>,
) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set, so over-draw before giving up.
        for _ in 0..target.saturating_mul(20).max(32) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        assert!(
            out.len() >= self.size.lo,
            "btree_set strategy could not reach the minimum size {} (got {})",
            self.size.lo,
            out.len()
        );
        out
    }
}
