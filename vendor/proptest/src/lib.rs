//! Vendored stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` macro the
//! workspace's property tests use. Inputs are generated from a deterministic
//! RNG seeded from the test name, so failures reproduce across runs. There
//! is no shrinking: a failing case panics with the generated inputs left to
//! inspect via the assertion message.

use std::marker::PhantomData;
use std::rc::Rc;

use rand::{Rng, RngCore, SeedableRng};

pub mod collection;

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut dyn RngCore) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `f`. Gives up (panics) when the
    /// filter rejects too many candidates in a row.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy for heterogeneous collections
    /// (e.g. `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut dyn RngCore) -> V {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut dyn RngCore) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy
    for FlatMap<S, F>
{
    type Value = T::Value;
    fn generate(&self, rng: &mut dyn RngCore) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut dyn RngCore) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut dyn RngCore) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut dyn RngCore) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut dyn RngCore) -> Self {
        // Finite, moderately sized values; property tests here care about
        // ordinary magnitudes, not NaN exotica.
        (rng.gen::<f64>() - 0.5) * 2e9
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut dyn RngCore) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy yielding arbitrary values of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut dyn RngCore) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.start..self.end)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if hi < <$t>::MAX {
                    rng.gen_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    // Avoid span overflow: draw from [lo-1, hi) and shift.
                    rng.gen_range(lo - 1..hi) + 1
                } else {
                    // Full domain.
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut dyn RngCore) -> f64 {
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut dyn RngCore) -> f64 {
        self.start() + rng.gen::<f64>() * (self.end() - self.start())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!((A, 0), (B, 1));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// FNV-1a hash of the test name; used to derive a per-test RNG seed.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub fn new_runner_rng(name: &str) -> rand::StdRng {
    rand::StdRng::seed_from_u64(seed_for(name))
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..100, flip in any::<bool>()) {
///         prop_assert!(x < 100 || flip);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal muncher for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::new_runner_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Uniformly picks one of the given strategies each case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in 5i64..25, y in 1usize..=4) {
            prop_assert!((5..25).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((any::<bool>(), 0u64..32), 1..40),
            n in (2usize..=16).prop_flat_map(|n| {
                prop_oneof![Just(n), (1..n).prop_map(move |s| n + s)]
            }),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            for (_, x) in &v {
                prop_assert!(*x < 32);
            }
            prop_assert!((2..32).contains(&n));
        }

        #[test]
        fn sets_are_sized(s in crate::collection::btree_set(0i64..1000, 1..8)) {
            prop_assert!(!s.is_empty() && s.len() < 8);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::new_runner_rng("x");
        let mut b = crate::new_runner_rng("x");
        let s = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
