//! Vendored stand-in for the `rand` crate.
//!
//! [`StdRng`] is xoshiro256++ seeded through SplitMix64 — statistically
//! strong enough for every sampling test in the workspace, deterministic
//! given a seed, and dependency-free. The trait split mirrors rand 0.8:
//! [`RngCore`] is object-safe (the distribution trait takes
//! `&mut dyn RngCore`), while [`Rng`] carries the generic conveniences via a
//! blanket impl.

use std::ops::Range;

/// Object-safe source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Values drawable uniformly from their "standard" domain (`[0, 1)` for
/// floats, the full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo` is the caller's contract.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                debug_assert!(span > 0, "gen_range needs a non-empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformInt for f64 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::standard_sample(rng) * (hi - lo)
    }
}

/// Generic conveniences over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard domain of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::uniform(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's standard RNG: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..75);
            assert!((-50..75).contains(&v));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
