//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access, so the workspace vendors the
//! exact API surface it uses: a `Mutex` whose `lock()` returns a guard
//! directly (no `Result`), plus a `Condvar`. Poisoning is transparently
//! ignored, matching parking_lot semantics where a panicking holder does not
//! poison the lock. One deviation from the real crate: `Condvar::wait*`
//! consume and return the guard (std style) because the vendored guard is a
//! plain `std::sync::MutexGuard`, which cannot be re-acquired through an
//! `&mut` borrow without unsafe code.

use std::fmt;
use std::time::Duration;

/// A mutual-exclusion primitive with the `parking_lot` locking API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                Some(poisoned.into_inner())
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A condition variable with the `std::sync` wait API (see module docs),
/// minus poison handling.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically releases `guard` and blocks until notified, then
    /// re-acquires the lock and returns the guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.0.wait(guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`. The boolean is
    /// `true` when the wait timed out rather than being notified.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.0.wait_timeout(guard, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(poisoned) => {
                let (g, res) = poisoned.into_inner();
                (g, res.timed_out())
            }
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                done = cvar.wait(done);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        waiter.join().expect("waiter");
    }

    #[test]
    fn condvar_wait_timeout_expires() {
        let lock = Mutex::new(());
        let cvar = Condvar::new();
        let guard = lock.lock();
        let (_guard, timed_out) =
            cvar.wait_timeout(guard, Duration::from_millis(5));
        assert!(timed_out);
    }
}
