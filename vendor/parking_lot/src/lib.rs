//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access, so the workspace vendors the
//! exact API surface it uses: a `Mutex` whose `lock()` returns a guard
//! directly (no `Result`). Poisoning is transparently ignored, matching
//! parking_lot semantics where a panicking holder does not poison the lock.

use std::fmt;

/// A mutual-exclusion primitive with the `parking_lot` locking API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                Some(poisoned.into_inner())
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
