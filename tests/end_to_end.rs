//! Scaled-down end-to-end runs of the paper's experiment pipelines — the
//! same code paths the `seplsm-bench` binaries drive, asserted rather than
//! printed.

use std::sync::Arc;

use seplsm::{
    tune, DataPoint, EngineConfig, LsmEngine, Policy, S9Workload, TunerOptions,
    VehicleWorkload, WaModel,
};
use seplsm_dist::Empirical;
use seplsm_lsm::{DiskModel, MemStore, TieredEngine};
use seplsm_workload::{paper_dataset, HistoricalQueries, RecentQueries};

fn ingest(points: &[DataPoint], policy: Policy, sstable: usize) -> LsmEngine {
    let mut engine = LsmEngine::in_memory(
        EngineConfig::new(policy).with_sstable_points(sstable),
    )
    .expect("engine");
    for p in points {
        engine.append(*p).expect("append");
    }
    engine
}

#[test]
fn fig9_pipeline_severe_dataset_prefers_separation() {
    // M12 is the paper's most disordered dataset; separation wins there.
    let ds = paper_dataset("M12").expect("exists");
    let dataset = ds.workload(60_000, 31).generate();
    let model =
        WaModel::new(Arc::new(ds.distribution()), ds.delta_t as f64, 512);
    let outcome = tune(&model, TunerOptions::online(512)).expect("tune");
    assert!(outcome.chose_separation(), "M12 must prefer pi_s");

    let wa_c = ingest(&dataset, Policy::conventional(512), 512)
        .metrics()
        .write_amplification();
    let wa_s = ingest(
        &dataset,
        Policy::separation(512, outcome.best_n_seq).expect("policy"),
        512,
    )
    .metrics()
    .write_amplification();
    assert!(
        wa_s < wa_c,
        "measured disagrees with the model: pi_c {wa_c:.3}, pi_s {wa_s:.3}"
    );
}

#[test]
fn fig11_pipeline_s9_separation_wins_and_model_agrees() {
    let dataset = S9Workload::new(20_000, 32).generate();
    let delays: Vec<f64> = dataset.iter().map(|p| p.delay() as f64).collect();
    let dist = Arc::new(Empirical::from_samples(&delays));
    // Budget 8 as in the paper's S-9 experiment.
    let model = WaModel::new(dist, 100.0, 8);
    let outcome = tune(&model, TunerOptions::default()).expect("tune");

    let wa_c = ingest(&dataset, Policy::conventional(8), 8)
        .metrics()
        .write_amplification();
    let best_seq = outcome.best_n_seq.clamp(1, 7);
    let wa_s = ingest(
        &dataset,
        Policy::separation(8, best_seq).expect("policy"),
        8,
    )
    .metrics()
    .write_amplification();
    assert!(
        wa_s < wa_c,
        "paper's S-9 finding (pi_s wins) not reproduced: c {wa_c:.3}, s {wa_s:.3}"
    );
    assert!(
        outcome.r_s_star < outcome.r_c,
        "model must also prefer pi_s: r_c {:.3}, r_s {:.3}",
        outcome.r_c,
        outcome.r_s_star
    );
}

/// Runs the recent-data workload on the production-style tiered engine and
/// averages the per-query statistics (RA over non-empty queries).
fn recent_stats_tiered(
    dataset: &[DataPoint],
    policy: Policy,
    queries: RecentQueries,
) -> (f64, f64, f64) {
    let disk = DiskModel::hdd();
    let mut engine = TieredEngine::new(
        EngineConfig::new(policy).with_sstable_points(512),
        Arc::new(MemStore::new()),
    )
    .expect("engine");
    let (mut ra, mut lat, mut tbl) = (0.0, 0.0, 0.0);
    let (mut ra_n, mut n) = (0u32, 0u32);
    for (i, p) in dataset.iter().enumerate() {
        engine.append(*p).expect("append");
        if queries.due(i as u64 + 1) {
            let max = engine.max_gen_time().expect("written");
            let (_, stats) = engine.query(queries.range(max)).expect("query");
            if let Some(r) = stats.read_amplification() {
                ra += r;
                ra_n += 1;
            }
            lat += disk.latency_ns(&stats);
            tbl += stats.tables_read as f64;
            n += 1;
        }
    }
    (
        ra / ra_n.max(1) as f64,
        lat / n.max(1) as f64,
        tbl / n.max(1) as f64,
    )
}

#[test]
fn fig14_pipeline_separation_wins_historical_queries_under_disorder() {
    // The paper's Fig. 14/15 mechanism: under pi_c, flushed files carrying
    // out-of-order points span wide generation ranges, so historical windows
    // overlap more files (more seeks); pi_s keeps in-order files narrow. The
    // paper highlights M6/M11/M12 as the datasets where pi_s wins — we check
    // M12, the most disordered.
    let ds = paper_dataset("M12").expect("exists");
    let dataset = ds.workload(40_000, 33).generate();
    let disk = DiskModel::hdd();
    let queries = HistoricalQueries::new(1_000, 200, 33);

    // As in §V-D, pi_s runs with the system-recommended capacities.
    let model =
        WaModel::new(Arc::new(ds.distribution()), ds.delta_t as f64, 512);
    let recommended = tune(&model, TunerOptions::online(512))
        .expect("tune")
        .decision;
    assert!(recommended.is_separation(), "M12 must recommend separation");

    let mut tables = Vec::new();
    let mut latencies = Vec::new();
    for policy in [Policy::conventional(512), recommended] {
        let mut engine = TieredEngine::new(
            EngineConfig::new(policy).with_sstable_points(512),
            Arc::new(MemStore::new()),
        )
        .expect("engine")
        .with_sync_flush();
        let mut min_gen = i64::MAX;
        for p in &dataset {
            engine.append(*p).expect("append");
            min_gen = min_gen.min(p.gen_time);
        }
        engine.drain();
        let max_gen = engine.max_gen_time().expect("points");
        let (mut tbl, mut lat, mut n) = (0.0, 0.0, 0u32);
        for range in queries.ranges(min_gen, max_gen) {
            let (_, stats) = engine.query(range).expect("query");
            tbl += stats.tables_read as f64;
            lat += disk.latency_ns(&stats);
            n += 1;
        }
        tables.push(tbl / n as f64);
        latencies.push(lat / n as f64);
    }
    assert!(
        tables[1] < tables[0],
        "pi_s must touch fewer files on M12 historical queries: \
         pi_c {:.2}, pi_s {:.2}",
        tables[0],
        tables[1]
    );
    assert!(
        latencies[1] < latencies[0],
        "and therefore be faster on the simulated HDD: pi_c {:.3e}, pi_s {:.3e}",
        latencies[0],
        latencies[1]
    );
}

#[test]
fn fig12_pipeline_read_amplification_is_measured_sanely() {
    // Recent-window read amplification: both policies must produce finite,
    // comparable RA (our substrate shows near-parity here; see
    // EXPERIMENTS.md for why the paper's small pi_s advantage depends on
    // IoTDB's chunk-read path).
    let ds = paper_dataset("M6").expect("exists");
    let dataset = ds.workload(40_000, 33).generate();
    let queries = RecentQueries::new(5_000, 500);

    let (ra_c, _, _) =
        recent_stats_tiered(&dataset, Policy::conventional(512), queries);
    let (ra_s, _, _) = recent_stats_tiered(
        &dataset,
        Policy::separation(512, 256).expect("policy"),
        queries,
    );
    assert!(ra_c.is_finite() && ra_s.is_finite());
    assert!(ra_c >= 0.0 && ra_s >= 0.0);
    assert!(
        (ra_s - ra_c).abs() < 5.0,
        "policies should be within the same RA regime: pi_c {ra_c:.2}, pi_s {ra_s:.2}"
    );
}

#[test]
fn fig13_pipeline_latency_follows_seek_counts() {
    // With HDD seek costs, whichever policy touches more files per recent
    // query pays the higher latency (the paper's Fig. 13 explanation).
    let ds = paper_dataset("M12").expect("exists");
    let dataset = ds.workload(40_000, 34).generate();
    let queries = RecentQueries::new(1_000, 500);

    let (_, lat_c, tbl_c) =
        recent_stats_tiered(&dataset, Policy::conventional(512), queries);
    let (_, lat_s, tbl_s) = recent_stats_tiered(
        &dataset,
        Policy::separation(512, 256).expect("policy"),
        queries,
    );
    assert_eq!(
        lat_s > lat_c,
        tbl_s > tbl_c,
        "latency must follow seek counts: pi_c ({lat_c:.0} ns, {tbl_c:.1} tbls), \
         pi_s ({lat_s:.0} ns, {tbl_s:.1} tbls)"
    );
}

#[test]
fn fig16_pipeline_h_dataset_model_ranks_policies_correctly() {
    let dataset = VehicleWorkload::new(60_000, 35).generate();
    let delays: Vec<f64> = dataset.iter().map(|p| p.delay() as f64).collect();
    let model =
        WaModel::new(Arc::new(Empirical::from_samples(&delays)), 1_000.0, 512);
    let outcome = tune(&model, TunerOptions::online(512)).expect("tune");

    let wa_c = ingest(&dataset, Policy::conventional(512), 512)
        .metrics()
        .write_amplification();
    let n_seq = outcome.best_n_seq.clamp(1, 511);
    let wa_s = ingest(
        &dataset,
        Policy::separation(512, n_seq).expect("policy"),
        512,
    )
    .metrics()
    .write_amplification();
    assert_eq!(
        outcome.r_s_star < outcome.r_c,
        wa_s < wa_c,
        "model ranking (r_c {:.3}, r_s {:.3}) vs measured (c {wa_c:.3}, s {wa_s:.3})",
        outcome.r_c,
        outcome.r_s_star,
    );
}

#[test]
fn table3_pipeline_background_compaction_keeps_throughput_comparable() {
    let ds = paper_dataset("M5").expect("exists");
    let dataset = ds.workload(60_000, 36).generate();
    let mut rates = Vec::new();
    for policy in [
        Policy::conventional(512),
        Policy::separation_even(512).expect("policy"),
    ] {
        let mut engine = TieredEngine::new(
            EngineConfig::new(policy).with_sstable_points(512),
            Arc::new(MemStore::new()),
        )
        .expect("engine");
        let start = std::time::Instant::now();
        for p in &dataset {
            engine.append(*p).expect("append");
        }
        let elapsed = start.elapsed().as_secs_f64();
        let report = engine.finish().expect("finish");
        assert_eq!(report.points.len(), dataset.len());
        rates.push(dataset.len() as f64 / elapsed);
    }
    let ratio = rates[1] / rates[0];
    assert!(
        (0.2..5.0).contains(&ratio),
        "throughput should be the same order under both policies, ratio {ratio:.2}"
    );
}

#[test]
fn historical_queries_return_identical_results_under_both_policies() {
    let ds = paper_dataset("M3").expect("exists");
    let dataset = ds.workload(30_000, 37).generate();
    let engine_c = ingest(&dataset, Policy::conventional(512), 512);
    let engine_s =
        ingest(&dataset, Policy::separation(512, 128).expect("policy"), 512);
    let max = engine_c.max_gen_time().expect("points");
    for range in HistoricalQueries::new(5_000, 50, 38).ranges(0, max) {
        let (a, _) = engine_c.query(range).expect("query c");
        let (b, _) = engine_s.query(range).expect("query s");
        assert_eq!(a, b, "query {range:?} disagreed between policies");
    }
}
