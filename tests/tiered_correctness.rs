//! Property and crash-recovery tests for `TieredEngine`: whatever the
//! ingest order, policy or table size, the background pipeline must never
//! lose, duplicate or reorder data; after `quiesce` the run must be sorted
//! and non-overlapping; and with a WAL + manifest attached, dropping the
//! engine mid-stream (a simulated crash) must lose no acknowledged point.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use seplsm::{
    DataPoint, EngineConfig, Event, FileStore, Policy, RingBufferSink,
    TableStore, TieredEngine, TieredOpenOptions, TimeRange,
};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "seplsm-tiered-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A deterministic scramble of `0..n` (prime-stride permutation).
fn scramble(n: usize, a: usize) -> Vec<usize> {
    let stride = 7919; // prime, larger than any generated n
    (0..n).map(|i| (i * stride + a) % n).collect()
}

fn arb_policy(n_max: usize) -> impl Strategy<Value = Policy> {
    (2..=n_max).prop_flat_map(|n| {
        prop_oneof![
            Just(Policy::conventional(n)),
            (1..n).prop_map(move |s| Policy::separation(n, s).expect("valid")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn never_loses_or_duplicates_any_order(
        count in 1usize..300,
        offset in 0usize..1000,
        policy in arb_policy(24),
        sstable in 1usize..32,
    ) {
        let mut engine = TieredEngine::new(
            EngineConfig::new(policy).with_sstable_points(sstable),
            Arc::new(seplsm::MemStore::new()),
        ).expect("engine");
        for &i in &scramble(count, offset) {
            let tg = i as i64 * 10;
            engine
                .append(DataPoint::new(tg, tg + (i as i64 * 131) % 900, i as f64))
                .expect("append");
        }
        let report = engine.finish().expect("finish");
        prop_assert_eq!(report.user_points, count as u64);
        prop_assert_eq!(report.points.len(), count);
        for (i, p) in report.points.iter().enumerate() {
            prop_assert_eq!(p.gen_time, i as i64 * 10);
            prop_assert_eq!(p.value, i as f64);
        }
    }

    #[test]
    fn quiesced_run_is_sorted_and_non_overlapping(
        count in 8usize..300,
        offset in 0usize..500,
        policy in arb_policy(16),
        sstable in 2usize..24,
    ) {
        let mut engine = TieredEngine::new(
            EngineConfig::new(policy).with_sstable_points(sstable),
            Arc::new(seplsm::MemStore::new()),
        ).expect("engine");
        for &i in &scramble(count, offset) {
            let tg = i as i64 * 10;
            engine
                .append(DataPoint::new(tg, tg + (i as i64 % 400), 0.0))
                .expect("append");
        }
        engine.quiesce().expect("quiesce");
        // After quiesce L0 is empty and the run covers everything flushed;
        // run tables must be sorted by range and pairwise disjoint.
        let layout = engine.table_layout();
        prop_assert!(layout.iter().all(|(level, _, _)| *level == "run"));
        for w in layout.windows(2) {
            prop_assert!(
                w[0].1.end < w[1].1.start,
                "overlapping run tables: {:?} vs {:?}",
                w[0].1,
                w[1].1
            );
        }
        // And queries still see every point exactly once.
        let (pts, _) = engine
            .query(TimeRange::new(0, count as i64 * 10))
            .expect("query");
        prop_assert_eq!(pts.len(), count);
    }

    #[test]
    fn crash_and_recover_keeps_every_acknowledged_point(
        count in 1usize..200,
        offset in 0usize..500,
        policy in arb_policy(16),
    ) {
        let dir = TempDir::new("prop-crash");
        let config = EngineConfig::new(policy).with_sstable_points(8);
        {
            let store: Arc<dyn TableStore> =
                Arc::new(FileStore::open(dir.path("tables")).expect("store"));
            let mut engine = TieredOpenOptions::new(config.clone())
                .store(store)
                .wal(dir.path("wal"))
                .manifest(dir.path("manifest"))
                .open()
                .expect("open");
            for &i in &scramble(count, offset) {
                let tg = i as i64 * 10;
                engine
                    .append(DataPoint::new(tg, tg + (i as i64 % 300), i as f64))
                    .expect("append");
            }
            engine.sync_wal().expect("sync");
            // Crash: drop without finish(). The Drop impl joins the worker
            // (the process survives), but buffers are never flushed — only
            // the WAL and manifest can save them.
            drop(engine);
        }
        let store: Arc<dyn TableStore> =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let (recovered, _report) = TieredOpenOptions::new(config)
            .store(store)
            .wal(dir.path("wal"))
            .manifest(dir.path("manifest"))
            .open_or_recover()
            .expect("recover");
        let (pts, _) = recovered
            .query(TimeRange::new(0, count as i64 * 10))
            .expect("query");
        prop_assert_eq!(pts.len(), count, "points lost across the crash");
        for (i, p) in pts.iter().enumerate() {
            prop_assert_eq!(p.gen_time, i as i64 * 10);
            prop_assert_eq!(p.value, i as f64, "wrong value at {}", i);
        }
    }
}

#[test]
fn recovered_engine_keeps_ingesting_and_finishes() {
    let dir = TempDir::new("resume");
    let config = EngineConfig::new(Policy::separation(16, 8).expect("policy"))
        .with_sstable_points(8);
    {
        let store: Arc<dyn TableStore> =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let mut engine = TieredOpenOptions::new(config.clone())
            .store(store)
            .wal(dir.path("wal"))
            .manifest(dir.path("manifest"))
            .open()
            .expect("open");
        for i in 0..100i64 {
            engine
                .append(DataPoint::new(i * 10, i * 10, i as f64))
                .expect("append");
        }
        engine.sync_wal().expect("sync");
        drop(engine); // crash
    }
    let store: Arc<dyn TableStore> =
        Arc::new(FileStore::open(dir.path("tables")).expect("store"));
    let (mut engine, _report) = TieredOpenOptions::new(config)
        .store(store)
        .wal(dir.path("wal"))
        .manifest(dir.path("manifest"))
        .open_or_recover()
        .expect("recover");
    // Keep writing after recovery, including stragglers.
    for i in 100..150i64 {
        engine
            .append(DataPoint::new(i * 10, i * 10, i as f64))
            .expect("append");
        if i % 10 == 0 {
            engine
                .append(DataPoint::new(i * 10 - 995, i * 10, -1.0))
                .expect("straggler");
        }
    }
    let report = engine.finish().expect("finish");
    // 100 original + 50 new + 5 stragglers (tg = 5, 105, …, 445: all new).
    assert_eq!(report.points.len(), 155);
    assert!(report
        .points
        .windows(2)
        .all(|w| w[0].gen_time < w[1].gen_time));
}

#[test]
fn unsynced_tail_may_be_lost_but_nothing_else() {
    // Without a final sync, the last few WAL records may be in OS buffers;
    // everything the manifest covers must still be intact.
    let dir = TempDir::new("unsynced");
    let config =
        EngineConfig::new(Policy::conventional(8)).with_sstable_points(8);
    {
        let store: Arc<dyn TableStore> =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let mut engine = TieredOpenOptions::new(config.clone())
            .store(store)
            .wal(dir.path("wal"))
            .manifest(dir.path("manifest"))
            .open()
            .expect("open");
        for i in 0..64i64 {
            engine
                .append(DataPoint::new(i * 10, i * 10, 0.0))
                .expect("append");
        }
        engine.drain();
        drop(engine);
    }
    let store: Arc<dyn TableStore> =
        Arc::new(FileStore::open(dir.path("tables")).expect("store"));
    let (recovered, _report) = TieredOpenOptions::new(config)
        .store(store)
        .wal(dir.path("wal"))
        .manifest(dir.path("manifest"))
        .open_or_recover()
        .expect("recover");
    let (pts, _) = recovered.query(TimeRange::new(0, 640)).expect("query");
    // All 64 points were handed to the flush pipeline (8 full MemTables)
    // and drained to L0 under the manifest, so none may disappear.
    assert_eq!(pts.len(), 64);
}

/// Observability: every compaction the pipeline executes must surface as
/// exactly one `CompactionExecuted` event whose rewrite count matches the
/// engine's own metric, and every flush as one `FlushFinished`.
#[test]
fn observer_sees_one_compaction_event_per_executed_compaction() {
    let sink = RingBufferSink::new(4096);
    let mut engine = TieredOpenOptions::new(
        EngineConfig::new(Policy::conventional(8)).with_sstable_points(8),
    )
    .observer(sink.clone())
    .sync_flush()
    .open()
    .expect("open");
    for i in 0..256i64 {
        // A prime-stride scramble so some points arrive out of order and
        // force run rewrites rather than pure appends.
        let tg = (i * 97) % 256 * 10;
        engine
            .append(DataPoint::new(tg, tg + 5, i as f64))
            .expect("append");
    }
    engine.quiesce().expect("quiesce");
    let metrics = engine.metrics();
    let events = sink.events();
    let executed = events
        .iter()
        .filter(|e| matches!(e, Event::CompactionExecuted { .. }))
        .count() as u64;
    assert_eq!(
        executed, metrics.compactions,
        "one CompactionExecuted event per counted compaction"
    );
    let rewritten: u64 = events
        .iter()
        .filter_map(|e| match e {
            Event::CompactionExecuted { rewritten, .. } => Some(*rewritten),
            _ => None,
        })
        .sum();
    assert_eq!(
        rewritten, metrics.rewritten_points,
        "event-reported rewrites must match the metric"
    );
    let flushes = events
        .iter()
        .filter(|e| matches!(e, Event::FlushFinished { .. }))
        .count() as u64;
    assert_eq!(flushes, metrics.flushes);
}

/// The degraded transition is typed ([`DegradedState`]) and emitted as a
/// `DegradedTransition` event carrying the same state the accessor returns.
#[test]
fn degraded_transition_is_typed_and_observed() {
    use seplsm::{
        DegradedOp, DegradedState, Fault, FaultPlan, FaultStore, MemStore,
    };

    let sink = RingBufferSink::new(1024);
    let plan = FaultPlan::new(7, Fault::FailPersistent { from: 0 });
    let store: Arc<dyn TableStore> =
        Arc::new(FaultStore::new(MemStore::new(), Arc::clone(&plan)));
    let mut engine = TieredOpenOptions::new(
        EngineConfig::new(Policy::conventional(4)).with_sstable_points(4),
    )
    .store(store)
    .faults(plan)
    .observer(sink.clone())
    .sync_flush()
    .open()
    .expect("open");
    let mut degraded = false;
    for i in 0..10_000i64 {
        if engine.append(DataPoint::new(i, i, 0.0)).is_err() {
            degraded = true;
            break;
        }
    }
    assert!(degraded, "persistent faults must degrade the engine");
    let state: DegradedState =
        engine.degraded_state().expect("typed degraded state");
    assert_eq!(state.op, DegradedOp::FlushWrite);
    assert!(state.attempts > 0);
    // The legacy string surface renders from the same typed state.
    assert_eq!(engine.degraded_reason(), Some(state.to_string()));
    let observed: Vec<DegradedState> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::DegradedTransition { state } => Some(state.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(observed, vec![state], "exactly one transition, same state");
}
