//! Property-based correctness of the storage engine: whatever the ingest
//! order, policy, buffer split or table size, the engine must never lose,
//! duplicate or reorder data, must keep the run invariant, and must answer
//! range queries exactly.

use proptest::prelude::*;
use seplsm::{
    DataPoint, EngineConfig, Event, LsmEngine, OpenOptions, Policy,
    RingBufferSink, TimeRange,
};

/// A deterministic scramble of `0..n` (affine permutation).
fn scramble(n: usize, a: usize) -> Vec<usize> {
    // `a` coprime with n is not guaranteed; use a prime stride > n instead.
    let stride = 7919; // prime, larger than any generated n
    (0..n).map(|i| (i * stride + a) % n).collect()
}

fn arb_policy(n_max: usize) -> impl Strategy<Value = Policy> {
    (2..=n_max).prop_flat_map(|n| {
        prop_oneof![
            Just(Policy::conventional(n)),
            (1..n).prop_map(move |s| Policy::separation(n, s).expect("valid")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_loss_no_duplication_any_order(
        count in 1usize..400,
        offset in 0usize..1000,
        policy in arb_policy(32),
        sstable in 1usize..40,
        delay_scale in 0i64..2000,
    ) {
        let order = scramble(count, offset);
        let mut engine = LsmEngine::in_memory(
            EngineConfig::new(policy).with_sstable_points(sstable),
        ).expect("engine");
        for &i in &order {
            let tg = i as i64 * 10;
            // Delay pattern derived from the index: deterministic, mixed.
            let delay = (i as i64 * 131) % (delay_scale + 1);
            engine.append(DataPoint::new(tg, tg + delay, i as f64)).expect("append");
        }
        let all = engine.scan_all().expect("scan");
        prop_assert_eq!(all.len(), count);
        for (i, p) in all.iter().enumerate() {
            prop_assert_eq!(p.gen_time, i as i64 * 10);
            prop_assert_eq!(p.value, i as f64);
        }
        engine.run().check_invariants().expect("run invariant");
        prop_assert_eq!(engine.metrics().user_points, count as u64);
    }

    #[test]
    fn queries_match_brute_force(
        count in 1usize..300,
        offset in 0usize..500,
        policy in arb_policy(24),
        q_start in 0i64..3000,
        q_len in 0i64..3000,
    ) {
        let order = scramble(count, offset);
        let mut engine = LsmEngine::in_memory(
            EngineConfig::new(policy).with_sstable_points(8),
        ).expect("engine");
        let mut reference = Vec::new();
        for &i in &order {
            let tg = i as i64 * 10;
            let p = DataPoint::new(tg, tg + (i as i64 % 700), i as f64);
            engine.append(p).expect("append");
            reference.push(p);
        }
        let range = TimeRange::new(q_start, q_start + q_len);
        let (got, stats) = engine.query(range).expect("query");
        let mut want: Vec<DataPoint> = reference
            .into_iter()
            .filter(|p| range.contains(p.gen_time))
            .collect();
        want.sort();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(stats.points_returned as usize, want.len());
        // Whole-table reads can only scan more than they return.
        prop_assert!(stats.disk_points_scanned + stats.mem_points_scanned
            >= stats.points_returned);
    }

    #[test]
    fn upserts_keep_latest_value(
        count in 2usize..200,
        policy in arb_policy(16),
        rewrite_every in 2usize..10,
    ) {
        let mut engine = LsmEngine::in_memory(
            EngineConfig::new(policy).with_sstable_points(8),
        ).expect("engine");
        for i in 0..count {
            let tg = i as i64 * 10;
            engine.append(DataPoint::new(tg, tg, i as f64)).expect("append");
        }
        // Overwrite a subset with new values (arriving late).
        for i in (0..count).step_by(rewrite_every) {
            let tg = i as i64 * 10;
            engine
                .append(DataPoint::new(tg, tg + 100_000, -1.0))
                .expect("upsert");
        }
        let all = engine.scan_all().expect("scan");
        prop_assert_eq!(all.len(), count);
        for (i, p) in all.iter().enumerate() {
            let expected = if i % rewrite_every == 0 { -1.0 } else { i as f64 };
            prop_assert_eq!(p.value, expected, "at index {}", i);
        }
    }

    #[test]
    fn flush_all_then_scan_equals_scan(
        count in 1usize..200,
        policy in arb_policy(16),
    ) {
        let mut engine = LsmEngine::in_memory(
            EngineConfig::new(policy).with_sstable_points(8),
        ).expect("engine");
        for &i in &scramble(count, 3) {
            let tg = i as i64 * 10;
            engine
                .append(DataPoint::new(tg, tg + (i as i64 % 300), 0.0))
                .expect("append");
        }
        let before = engine.scan_all().expect("scan");
        engine.flush_all().expect("flush");
        prop_assert_eq!(engine.buffered_points(), 0);
        let after = engine.scan_all().expect("scan");
        prop_assert_eq!(before, after);
        engine.run().check_invariants().expect("run invariant");
    }

    #[test]
    fn policy_switches_preserve_data(
        count in 1usize..200,
        first in arb_policy(16),
        second in arb_policy(16),
    ) {
        let mut engine = LsmEngine::in_memory(
            EngineConfig::new(first).with_sstable_points(8),
        ).expect("engine");
        let half = count / 2;
        for &i in &scramble(count, 1) {
            if i < half {
                let tg = i as i64 * 10;
                engine
                    .append(DataPoint::new(tg, tg + (i as i64 % 250), 0.0))
                    .expect("append");
            }
        }
        engine.set_policy(second).expect("switch");
        for &i in &scramble(count, 1) {
            if i >= half {
                let tg = i as i64 * 10;
                engine
                    .append(DataPoint::new(tg, tg + (i as i64 % 250), 0.0))
                    .expect("append");
            }
        }
        let all = engine.scan_all().expect("scan");
        prop_assert_eq!(all.len(), count);
        prop_assert!(all.windows(2).all(|w| w[0].gen_time < w[1].gen_time));
    }
}

#[test]
fn write_amplification_is_at_least_one_after_flush() {
    // Once everything is flushed, every user point was written at least once.
    let mut engine = LsmEngine::in_memory(
        EngineConfig::new(Policy::conventional(16)).with_sstable_points(8),
    )
    .expect("engine");
    for &i in &scramble(500, 11) {
        let tg = i as i64 * 10;
        engine
            .append(DataPoint::new(tg, tg + (i as i64 % 900), 0.0))
            .expect("append");
    }
    engine.flush_all().expect("flush");
    assert!(engine.metrics().write_amplification() >= 1.0);
}

/// Observability: on the synchronous engine, every counted compaction
/// surfaces as exactly one `CompactionExecuted` event and the events'
/// rewrite totals reproduce the metric exactly.
#[test]
fn observer_compaction_events_match_metrics() {
    let sink = RingBufferSink::new(8192);
    let mut engine = OpenOptions::new(
        EngineConfig::new(Policy::conventional(16)).with_sstable_points(8),
    )
    .observer(sink.clone())
    .open()
    .expect("open");
    for &i in &scramble(400, 3) {
        let tg = i as i64 * 10;
        engine
            .append(DataPoint::new(tg, tg + (i as i64 * 131) % 900, i as f64))
            .expect("append");
    }
    engine.flush_all().expect("flush");
    let metrics = engine.metrics().clone();
    let events = sink.events();
    let executed = events
        .iter()
        .filter(|e| matches!(e, Event::CompactionExecuted { .. }))
        .count() as u64;
    assert_eq!(executed, metrics.compactions);
    let rewritten: u64 = events
        .iter()
        .filter_map(|e| match e {
            Event::CompactionExecuted { rewritten, .. } => Some(*rewritten),
            _ => None,
        })
        .sum();
    assert_eq!(rewritten, metrics.rewritten_points);
    let classified = events
        .iter()
        .filter(|e| matches!(e, Event::PointClassified { .. }))
        .count() as u64;
    assert_eq!(classified, metrics.user_points);
}

/// Determinism: two runs of the same seeded workload against identically
/// configured engines must produce identical event traces.
#[test]
fn identical_workloads_produce_identical_event_traces() {
    let trace = |seed: usize| {
        let sink = RingBufferSink::new(16384);
        let mut engine = OpenOptions::new(
            EngineConfig::new(Policy::separation(16, 8).expect("policy"))
                .with_sstable_points(8),
        )
        .observer(sink.clone())
        .open()
        .expect("open");
        for &i in &scramble(300, seed) {
            let tg = i as i64 * 10;
            engine
                .append(DataPoint::new(tg, tg + (i as i64 % 700), i as f64))
                .expect("append");
        }
        engine.flush_all().expect("flush");
        sink.events()
    };
    let a = trace(17);
    let b = trace(17);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must replay the same event trace");
    let c = trace(18);
    assert_ne!(a, c, "different seeds must actually change the trace");
}
