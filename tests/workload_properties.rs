//! Property-based tests on the distribution library and the workload
//! generators: CDF/quantile coherence for arbitrary parameters, and
//! structural invariants of every generated dataset.

use proptest::prelude::*;
use seplsm::DelayDistribution;
use seplsm_dist::{Exponential, LogNormal, Pareto, Uniform};
use seplsm_workload::{
    fraction_out_of_order, DynamicWorkload, S9Workload, SyntheticWorkload,
    VehicleWorkload, PAPER_DATASETS,
};

fn check_distribution(d: &dyn DelayDistribution) {
    // CDF is monotone over the quantile range and inverts the quantile.
    let mut prev = -f64::INFINITY;
    for i in 1..40 {
        let q = i as f64 / 40.0;
        let x = d.quantile(q);
        assert!(x >= prev, "{}: quantile not monotone at q={q}", d.label());
        prev = x;
        let back = d.cdf(x);
        assert!(
            (back - q).abs() < 1e-6,
            "{}: cdf(quantile({q})) = {back}",
            d.label()
        );
        // sf complements cdf.
        assert!((d.cdf(x) + d.sf(x) - 1.0).abs() < 1e-9);
        // ln_cdf agrees with ln(cdf).
        if d.cdf(x) > 1e-300 {
            assert!((d.ln_cdf(x) - d.cdf(x).ln()).abs() < 1e-7);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lognormal_is_coherent(mu in -2.0..8.0f64, sigma in 0.1..3.0f64) {
        check_distribution(&LogNormal::new(mu, sigma));
    }

    #[test]
    fn exponential_is_coherent(mean in 0.1..1e6f64) {
        check_distribution(&Exponential::with_mean(mean));
    }

    #[test]
    fn uniform_is_coherent(low in -1e3..1e3f64, width in 0.1..1e4f64) {
        check_distribution(&Uniform::new(low, low + width));
    }

    #[test]
    fn pareto_is_coherent(scale in 0.1..1e3f64, shape in 0.2..6.0f64) {
        check_distribution(&Pareto::new(scale, shape));
    }

    #[test]
    fn synthetic_datasets_are_well_formed(
        dt in 1i64..200,
        mu in 1.0..6.0f64,
        sigma in 0.2..2.5f64,
        count in 10usize..2000,
        seed in 0u64..1000,
    ) {
        let w = SyntheticWorkload::new(dt, LogNormal::new(mu, sigma), count, seed);
        let pts = w.generate();
        prop_assert_eq!(pts.len(), count);
        // Arrival-sorted, unique gen times forming the dt-grid.
        prop_assert!(pts.windows(2).all(|w| w[0].arrival_time <= w[1].arrival_time));
        let mut tgs: Vec<i64> = pts.iter().map(|p| p.gen_time).collect();
        tgs.sort_unstable();
        for (i, tg) in tgs.iter().enumerate() {
            prop_assert_eq!(*tg, i as i64 * dt);
        }
        // Delays are the arrival/generation difference and non-negative.
        prop_assert!(pts.iter().all(|p| p.delay() >= 0));
    }

    #[test]
    fn disorder_fraction_is_a_fraction(
        count in 1usize..3000,
        seed in 0u64..100,
    ) {
        let w = SyntheticWorkload::new(50, LogNormal::new(5.0, 2.0), count, seed);
        let f = fraction_out_of_order(&w.generate());
        prop_assert!((0.0..=1.0).contains(&f));
    }
}

#[test]
fn every_paper_dataset_generates() {
    for ds in PAPER_DATASETS {
        let pts = ds.workload(2_000, 1).generate();
        assert_eq!(pts.len(), 2_000, "{}", ds.name);
        assert!(
            pts.windows(2)
                .all(|w| w[0].arrival_time <= w[1].arrival_time),
            "{} not arrival-sorted",
            ds.name
        );
    }
}

#[test]
fn real_world_simulators_have_their_signatures() {
    // S-9: skewed delays, noticeable disorder, irregular intervals.
    let s9 = S9Workload::new(20_000, 4).generate();
    let f_s9 = fraction_out_of_order(&s9);
    assert!(f_s9 > 0.01, "S-9 disorder {f_s9}");

    // H: long systematic delays, near-zero disorder.
    let h = VehicleWorkload::new(40_000, 4).generate();
    let f_h = fraction_out_of_order(&h);
    assert!(f_h < 0.01, "H disorder {f_h}");
    assert!(f_s9 > f_h * 5.0, "S-9 must be far more disordered than H");

    // Dynamic: monotone gen grid across segment boundaries.
    let dyn_pts = DynamicWorkload::paper_fig10(2_000, 4).generate();
    let mut tgs: Vec<i64> = dyn_pts.iter().map(|p| p.gen_time).collect();
    tgs.sort_unstable();
    tgs.dedup();
    assert_eq!(tgs.len(), dyn_pts.len());
}
