//! WA-parity regression tests: pin the measured write amplification of
//! fig07/fig09-style runs (in-memory store) so the storage-kernel refactor
//! provably preserves π_c and π_s semantics bit-for-bit.
//!
//! The golden values below were captured from the pre-refactor engine
//! (`LsmEngine` with the inline flush/merge pipeline). Each case compares
//! `wa_measured` via `f64::to_bits` — any change to classification, merge
//! planning, or metric accounting shows up as a failure here.

use seplsm::lsm::Metrics;
use seplsm::{
    paper_dataset, DataPoint, EngineConfig, LogNormal, LsmEngine, Policy,
    SyntheticWorkload,
};

/// The fig07/fig09 driver loop: ingest in arrival order, return metrics.
fn measure_wa(points: &[DataPoint], policy: Policy, sstable: usize) -> Metrics {
    let mut engine = LsmEngine::in_memory(
        EngineConfig::new(policy).with_sstable_points(sstable),
    )
    .expect("engine");
    for p in points {
        engine.append(*p).expect("append");
    }
    engine.metrics().clone()
}

/// One pinned measurement: workload + policy -> exact metric values.
struct Golden {
    name: &'static str,
    wa_bits: u64,
    disk_points_written: u64,
    flushes: u64,
    compactions: u64,
    rewritten_points: u64,
}

fn check(points: &[DataPoint], policy: Policy, golden: &Golden) {
    let m = measure_wa(points, policy, 512);
    let wa = m.write_amplification();
    assert_eq!(
        wa.to_bits(),
        golden.wa_bits,
        "{}: wa_measured {} != golden {}",
        golden.name,
        wa,
        f64::from_bits(golden.wa_bits)
    );
    assert_eq!(
        (
            m.disk_points_written,
            m.flushes,
            m.compactions,
            m.rewritten_points
        ),
        (
            golden.disk_points_written,
            golden.flushes,
            golden.compactions,
            golden.rewritten_points
        ),
        "{}: counter mismatch",
        golden.name
    );
}

/// Captures current values in golden-table form when asked for explicitly:
/// `WA_PARITY_CAPTURE=1 cargo test --test wa_parity -- --nocapture`.
fn capture(name: &str, points: &[DataPoint], policy: Policy) {
    let m = measure_wa(points, policy, 512);
    println!(
        "Golden {{ name: \"{name}\", wa_bits: 0x{:016x}, disk_points_written: {}, \
         flushes: {}, compactions: {}, rewritten_points: {} }}, // wa = {:.6}",
        m.write_amplification().to_bits(),
        m.disk_points_written,
        m.flushes,
        m.compactions,
        m.rewritten_points,
        m.write_amplification()
    );
}

fn fig07_dataset() -> Vec<DataPoint> {
    // fig07 shape at test scale: lognormal(5, 2) delays on a dt=50 grid.
    SyntheticWorkload::new(50, LogNormal::new(5.0, 2.0), 40_000, 7).generate()
}

fn m_dataset(name: &str) -> Vec<DataPoint> {
    // fig09 shape at test scale: the paper's synthetic M-datasets.
    paper_dataset(name)
        .unwrap_or_else(|| panic!("unknown dataset {name}"))
        .workload(30_000, 9)
        .generate()
}

const N: usize = 512;

#[test]
fn fig07_style_wa_is_bit_identical() {
    let data = fig07_dataset();
    if std::env::var_os("WA_PARITY_CAPTURE").is_some() {
        capture("fig07/pi_c", &data, Policy::conventional(N));
        for n_seq in [128, 256, 448] {
            capture(
                &format!("fig07/pi_s_{n_seq}"),
                &data,
                Policy::separation(N, n_seq).expect("policy"),
            );
        }
        return;
    }
    for golden in FIG07_GOLDEN {
        let policy = match golden.name {
            "fig07/pi_c" => Policy::conventional(N),
            "fig07/pi_s_128" => Policy::separation(N, 128).expect("policy"),
            "fig07/pi_s_256" => Policy::separation(N, 256).expect("policy"),
            "fig07/pi_s_448" => Policy::separation(N, 448).expect("policy"),
            other => panic!("unknown golden {other}"),
        };
        check(&data, policy, golden);
    }
}

#[test]
fn fig09_style_wa_is_bit_identical() {
    for (ds, goldens) in [
        ("M4", &FIG09_M4_GOLDEN),
        ("M8", &FIG09_M8_GOLDEN),
        ("M12", &FIG09_M12_GOLDEN),
    ] {
        let data = m_dataset(ds);
        if std::env::var_os("WA_PARITY_CAPTURE").is_some() {
            capture(
                &format!("fig09/{ds}/pi_c"),
                &data,
                Policy::conventional(N),
            );
            capture(
                &format!("fig09/{ds}/pi_s_250"),
                &data,
                Policy::separation(N, 250).expect("policy"),
            );
            continue;
        }
        check(&data, Policy::conventional(N), &goldens[0]);
        check(
            &data,
            Policy::separation(N, 250).expect("policy"),
            &goldens[1],
        );
    }
}

// Captured from the pre-refactor engine (WA_PARITY_CAPTURE=1, seed state).
const FIG07_GOLDEN: &[Golden] = &[
    Golden {
        name: "fig07/pi_c",
        wa_bits: 0x400e1b089a027525,
        disk_points_written: 150528,
        flushes: 1,
        compactions: 77,
        rewritten_points: 110592,
    }, // wa = 3.763200
    Golden {
        name: "fig07/pi_s_128",
        wa_bits: 0x400346dc5d638866,
        disk_points_written: 96384,
        flushes: 285,
        compactions: 9,
        rewritten_points: 56448,
    }, // wa = 2.409600
    Golden {
        name: "fig07/pi_s_256",
        wa_bits: 0x4001eb851eb851ec,
        disk_points_written: 89600,
        flushes: 148,
        compactions: 8,
        rewritten_points: 49664,
    }, // wa = 2.240000
    Golden {
        name: "fig07/pi_s_448",
        wa_bits: 0x40074f0d844d013b,
        disk_points_written: 116544,
        flushes: 86,
        compactions: 21,
        rewritten_points: 76672,
    }, // wa = 2.913600
];

const FIG09_M4_GOLDEN: [Golden; 2] = [
    Golden {
        name: "fig09/M4/pi_c",
        wa_bits: 0x4000cb295e9e1b09,
        disk_points_written: 62976,
        flushes: 1,
        compactions: 57,
        rewritten_points: 33280,
    }, // wa = 2.099200
    Golden {
        name: "fig09/M4/pi_s_250",
        wa_bits: 0x3ffff0b550f6da2e,
        disk_points_written: 59888,
        flushes: 116,
        compactions: 3,
        rewritten_points: 30102,
    }, // wa = 1.996267
];
const FIG09_M8_GOLDEN: [Golden; 2] = [
    Golden {
        name: "fig09/M8/pi_c",
        wa_bits: 0x400ccefc0a60647d,
        disk_points_written: 108032,
        flushes: 1,
        compactions: 57,
        rewritten_points: 78336,
    }, // wa = 3.601067
    Golden {
        name: "fig09/M8/pi_s_250",
        wa_bits: 0x4000e6e0bbdeaf95,
        disk_points_written: 63382,
        flushes: 111,
        compactions: 7,
        rewritten_points: 33798,
    }, // wa = 2.112733
];
const FIG09_M12_GOLDEN: [Golden; 2] = [
    Golden {
        name: "fig09/M12/pi_c",
        wa_bits: 0x4029c54a6921735f,
        disk_points_written: 386560,
        flushes: 1,
        compactions: 57,
        rewritten_points: 356864,
    }, // wa = 12.885333
    Golden {
        name: "fig09/M12/pi_s_250",
        wa_bits: 0x401c29073c7bf8e6,
        disk_points_written: 211202,
        flushes: 100,
        compactions: 18,
        rewritten_points: 181486,
    }, // wa = 7.040067
];
