//! Durability: the file-backed engine with a WAL must survive a "crash"
//! (dropping the engine without flushing) with no data loss, and must
//! surface on-disk corruption instead of returning wrong data.

use std::path::PathBuf;
use std::sync::Arc;

use seplsm::{
    DataPoint, EngineConfig, FileStore, LsmEngine, OpenOptions, Policy,
};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "seplsm-durability-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn write_points(engine: &mut LsmEngine, count: usize) {
    for i in 0..count {
        let tg = i as i64 * 10;
        let delay = (i as i64 * 37) % 400;
        engine
            .append(DataPoint::new(tg, tg + delay, i as f64))
            .expect("append");
    }
}

fn recover(dir: &TempDir, config: EngineConfig) -> seplsm::Result<LsmEngine> {
    let store = Arc::new(FileStore::open(dir.path("tables"))?);
    let (engine, _report) = OpenOptions::new(config)
        .store(store)
        .wal(dir.path("wal"))
        .open_or_recover()?;
    Ok(engine)
}

#[test]
fn crash_recovery_restores_every_point() {
    let dir = TempDir::new("basic");
    let config =
        EngineConfig::new(Policy::conventional(32)).with_sstable_points(16);
    {
        let store =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let mut engine = OpenOptions::new(config.clone())
            .store(store)
            .wal(dir.path("wal"))
            .open()
            .expect("open");
        write_points(&mut engine, 500);
        // Points beyond the last flush live only in the WAL. Simulate a
        // crash: sync the log, then drop without flush_all.
        engine.sync_wal().expect("sync wal");
        assert!(engine.buffered_points() > 0, "test needs unflushed points");
    }
    let engine = recover(&dir, config).expect("recover");
    let all = engine.scan_all().expect("scan");
    assert_eq!(all.len(), 500);
    for (i, p) in all.iter().enumerate() {
        assert_eq!(p.gen_time, i as i64 * 10);
        assert_eq!(p.value, i as f64);
    }
    engine.run().check_invariants().expect("run invariant");
}

#[test]
fn recovery_under_separation_policy_reroutes_buffers() {
    let dir = TempDir::new("separation");
    let config = EngineConfig::new(Policy::separation(32, 16).expect("policy"))
        .with_sstable_points(16);
    {
        let store =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let mut engine = OpenOptions::new(config.clone())
            .store(store)
            .wal(dir.path("wal"))
            .open()
            .expect("open");
        write_points(&mut engine, 300);
        engine.sync_wal().expect("sync wal");
    }
    let engine = recover(&dir, config).expect("recover");
    assert_eq!(engine.scan_all().expect("scan").len(), 300);
}

#[test]
fn recovery_is_idempotent() {
    let dir = TempDir::new("idempotent");
    let config =
        EngineConfig::new(Policy::conventional(16)).with_sstable_points(8);
    {
        let store =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let mut engine = OpenOptions::new(config.clone())
            .store(store)
            .wal(dir.path("wal"))
            .open()
            .expect("open");
        write_points(&mut engine, 100);
        engine.sync_wal().expect("sync wal");
    }
    for _ in 0..3 {
        let engine = recover(&dir, config.clone()).expect("recover");
        assert_eq!(engine.scan_all().expect("scan").len(), 100);
        // Dropping without writing must not change on-disk state.
    }
}

#[test]
fn recovered_engine_accepts_new_writes() {
    let dir = TempDir::new("continue");
    let config =
        EngineConfig::new(Policy::conventional(16)).with_sstable_points(8);
    {
        let store =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let mut engine = OpenOptions::new(config.clone())
            .store(store)
            .wal(dir.path("wal"))
            .open()
            .expect("open");
        write_points(&mut engine, 100);
        engine.sync_wal().expect("sync wal");
    }
    {
        let mut engine = recover(&dir, config.clone()).expect("recover");
        for i in 100..200 {
            let tg = i as i64 * 10;
            engine
                .append(DataPoint::new(tg, tg, i as f64))
                .expect("append");
        }
        engine.sync_wal().expect("sync wal");
    }
    let engine = recover(&dir, config).expect("recover again");
    assert_eq!(engine.scan_all().expect("scan").len(), 200);
}

#[test]
fn corrupted_table_is_reported_not_returned() {
    let dir = TempDir::new("corrupt");
    let config =
        EngineConfig::new(Policy::conventional(16)).with_sstable_points(8);
    {
        let store =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let mut engine = LsmEngine::new(config.clone(), store).expect("engine");
        write_points(&mut engine, 64);
        engine.flush_all().expect("flush");
    }
    // Flip a byte in some SSTable file.
    let tables_dir = dir.path("tables");
    let victim = std::fs::read_dir(&tables_dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "sst"))
        .expect("at least one table");
    let mut bytes = std::fs::read(&victim).expect("read table");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&victim, &bytes).expect("corrupt table");

    let result = recover(&dir, config);
    assert!(
        result.is_err(),
        "corruption must fail recovery, not pass silently"
    );
}

#[test]
fn manifest_recovery_matches_full_recovery() {
    let dir = TempDir::new("manifest");
    let config =
        EngineConfig::new(Policy::conventional(32)).with_sstable_points(16);
    {
        let store =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let mut engine = OpenOptions::new(config.clone())
            .store(store)
            .wal(dir.path("wal"))
            .manifest(dir.path("manifest"))
            .open()
            .expect("open");
        write_points(&mut engine, 500);
        engine.sync_wal().expect("sync wal");
    }
    // Manifest-based recovery (O(metadata)).
    let store = Arc::new(FileStore::open(dir.path("tables")).expect("store"));
    let (fast, _report) = OpenOptions::new(config.clone())
        .store(store)
        .wal(dir.path("wal"))
        .manifest(dir.path("manifest"))
        .open_or_recover()
        .expect("manifest recovery");
    // Full recovery (reads all tables).
    let slow = recover(&dir, config).expect("full recovery");
    let a = fast.scan_all().expect("scan fast");
    let b = slow.scan_all().expect("scan slow");
    assert_eq!(a.len(), 500);
    assert_eq!(a, b, "manifest recovery must agree with full recovery");
    fast.run().check_invariants().expect("run invariant");
}

#[test]
fn manifest_recovery_survives_repeated_restarts_with_writes() {
    let dir = TempDir::new("manifest-repeat");
    let config = EngineConfig::new(Policy::separation(32, 16).expect("policy"))
        .with_sstable_points(16);
    let mut total = 0usize;
    for round in 0..4 {
        let store =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let options = OpenOptions::new(config.clone())
            .store(store)
            .wal(dir.path("wal"))
            .manifest(dir.path("manifest"));
        let mut engine = if round == 0 {
            options.open().expect("open")
        } else {
            options.open_or_recover().expect("recover").0
        };
        for i in 0..100usize {
            let idx = (round * 100 + i) as i64;
            engine
                .append(DataPoint::new(idx * 10, idx * 10 + (idx % 70), 0.0))
                .expect("append");
        }
        total += 100;
        engine.sync_wal().expect("sync wal");
        assert_eq!(engine.scan_all().expect("scan").len(), total);
    }
    assert_eq!(total, 400);
}

#[test]
fn store_without_wal_recovers_flushed_state() {
    let dir = TempDir::new("no-wal");
    let config =
        EngineConfig::new(Policy::conventional(16)).with_sstable_points(8);
    {
        let store =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let mut engine = LsmEngine::new(config.clone(), store).expect("engine");
        write_points(&mut engine, 160);
        engine.flush_all().expect("flush");
    }
    let store = Arc::new(FileStore::open(dir.path("tables")).expect("store"));
    let (engine, _report) = OpenOptions::new(config)
        .store(store)
        .open_or_recover()
        .expect("recover");
    assert_eq!(engine.scan_all().expect("scan").len(), 160);
    assert_eq!(engine.policy(), Policy::conventional(16));
}
