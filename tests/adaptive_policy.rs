//! End-to-end behaviour of `π_adaptive` on dynamic workloads: it must
//! detect distribution changes, keep the data intact across policy
//! switches, and not lose to the static policies by more than noise.

use seplsm::{
    AdaptiveConfig, AdaptiveEngine, AdaptiveOpen, AnalyzerConfig,
    ArbiterConfig, EngineConfig, Event, LsmEngine, MultiOpenOptions,
    OpenOptions, Policy, RingBufferSink, SeriesId,
};
use seplsm_types::DataPoint;
use seplsm_workload::DynamicWorkload;

fn static_wa(points: &[DataPoint], policy: Policy, sstable: usize) -> f64 {
    let mut engine = LsmEngine::in_memory(
        EngineConfig::new(policy).with_sstable_points(sstable),
    )
    .expect("engine");
    for p in points {
        engine.append(*p).expect("append");
    }
    engine.metrics().write_amplification()
}

fn adaptive_engine(n: usize, sstable: usize) -> AdaptiveEngine {
    OpenOptions::new(
        EngineConfig::new(Policy::conventional(n)).with_sstable_points(sstable),
    )
    .adaptive(AdaptiveConfig::new().with_analyzer(AnalyzerConfig {
        window: 2048,
        min_samples: 1024,
        check_every: 512,
        ks_alpha: 0.01,
    }))
    .expect("engine")
}

#[test]
fn adaptive_tracks_dynamic_sigma_stream() {
    // A scaled-down Fig. 10: five sigma regimes.
    let dataset = DynamicWorkload::paper_fig10(30_000, 21).generate();
    let n = 512;
    let sstable = 512;

    let mut engine = adaptive_engine(n, sstable);
    for p in &dataset {
        engine.append(*p).expect("append");
    }

    // Data integrity across all the switches.
    let all = engine.engine().scan_all().expect("scan");
    assert_eq!(all.len(), dataset.len());
    assert!(all.windows(2).all(|w| w[0].gen_time < w[1].gen_time));

    // It must actually have tuned, more than once for a 5-regime stream.
    assert!(
        engine.tunes().len() >= 2,
        "only {} tuning decisions on a 5-regime stream",
        engine.tunes().len()
    );

    // And it should not lose badly to either static baseline.
    let adaptive_wa = engine.engine().metrics().write_amplification();
    let wa_c = static_wa(&dataset, Policy::conventional(n), sstable);
    let wa_s = static_wa(
        &dataset,
        Policy::separation_even(n).expect("policy"),
        sstable,
    );
    let best_static = wa_c.min(wa_s);
    assert!(
        adaptive_wa <= best_static * 1.25 + 0.2,
        "adaptive {adaptive_wa:.3} vs static best {best_static:.3} (c {wa_c:.3}, s {wa_s:.3})"
    );
}

#[test]
fn adaptive_handles_mixed_distribution_families() {
    // A scaled-down Fig. 17 stream (no single delay law).
    let dataset = DynamicWorkload::paper_fig17(20_000, 22).generate();
    let mut engine = adaptive_engine(512, 512);
    for p in &dataset {
        engine.append(*p).expect("append");
    }
    assert_eq!(engine.engine().metrics().user_points, dataset.len() as u64);
    assert!(!engine.tunes().is_empty());
    // Each tune record carries a usable model summary.
    for t in engine.tunes() {
        assert!(t.r_c >= 1.0);
        assert!(t.r_s_star >= 1.0);
        assert!(t.delta_t > 0.0);
    }
}

#[test]
fn adaptive_prefers_conventional_on_clean_streams() {
    // Nearly in-order data: the tuner must not switch to separation.
    let dataset = seplsm::SyntheticWorkload::new(
        50,
        seplsm::LogNormal::new(1.0, 0.3), // delays ~3 ms << 50 ms
        30_000,
        23,
    )
    .generate();
    let mut engine = adaptive_engine(512, 512);
    for p in &dataset {
        engine.append(*p).expect("append");
    }
    assert!(
        !engine.policy().is_separation(),
        "clean stream must stay on pi_c, got {}",
        engine.policy().name()
    );
    let wa = engine.engine().metrics().write_amplification();
    assert!(wa < 1.1, "clean stream WA should be ~1, got {wa:.3}");
}

#[test]
fn fleet_series_switches_policy_online_under_drifting_delays() {
    // One clean series and one whose delays drift from mild to chaotic
    // (lognormal sigma ramping up), sharing an arbiter-managed budget.
    // The drifting series must switch policy *online* — witnessed by a
    // PolicyRetuned event — while the clean one stays on pi_c.
    let sink = RingBufferSink::new(1 << 16);
    let mut fleet =
        MultiOpenOptions::new(EngineConfig::new(Policy::conventional(256)))
            .arbiter(ArbiterConfig::new(2048))
            .observer(sink.clone())
            .adaptive(AdaptiveConfig::new().with_analyzer(AnalyzerConfig {
                window: 2048,
                min_samples: 1024,
                check_every: 512,
                ks_alpha: 0.01,
            }))
            .expect("fleet");

    let clean = SeriesId(1);
    let drifting = SeriesId(2);
    let clean_pts = seplsm::SyntheticWorkload::new(
        50,
        seplsm::LogNormal::new(1.0, 0.3),
        12_000,
        31,
    )
    .generate();
    let drifting_pts = DynamicWorkload::new(
        50,
        vec![
            (6_000, Box::new(seplsm::LogNormal::new(1.5, 0.4))),
            (6_000, Box::new(seplsm::LogNormal::new(6.5, 2.0))),
        ],
        32,
    )
    .generate();

    for (c, d) in clean_pts.iter().zip(&drifting_pts) {
        fleet.append(clean, *c).expect("append clean");
        fleet.append(drifting, *d).expect("append drifting");
    }

    assert!(
        fleet.tunes(drifting) >= 1,
        "drifting series never retuned online"
    );
    assert!(
        fleet
            .policy(drifting)
            .is_some_and(|policy| policy.is_separation()),
        "drifting series should have switched to separation, got {:?}",
        fleet.policy(drifting)
    );
    assert!(
        fleet
            .policy(clean)
            .is_some_and(|policy| !policy.is_separation()),
        "clean series must stay conventional"
    );
    let retuned: Vec<(u64, bool)> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::PolicyRetuned {
                series, separation, ..
            } => Some((*series, *separation)),
            _ => None,
        })
        .collect();
    assert!(
        retuned.contains(&(u64::from(drifting.0), true)),
        "no PolicyRetuned witness for the drifting series: {retuned:?}"
    );
    assert!(
        fleet.engine().retunes() >= 1,
        "fleet retune counter must witness the online switch"
    );
}
