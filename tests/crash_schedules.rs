//! Crash-schedule exploration: record the full I/O-op trace of a mixed
//! in-order/out-of-order workload, then replay the same workload with a
//! hard crash injected at *every* op prefix and assert the recovery
//! contract after each one:
//!
//! * every point acknowledged by a successful `sync` survives recovery;
//! * recovery never invents points (recovered ⊆ attempted) and never
//!   duplicates a generation time (the documented WAL window is deduplicated
//!   by the merge pipeline);
//! * the recovered engine passes the full integrity audit
//!   (`check_integrity`), and nothing panics anywhere on the way.
//!
//! A torn-write sweep repeats the schedule with the crashing op's payload
//! truncated, a proptest drives `MultiSeriesEngine` through random
//! workload/crash combinations, and a salvage test corrupts a stored table
//! on purpose to check the degraded recovery path end to end.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use seplsm::{
    AdmissionOutcome, DataPoint, EngineConfig, Fault, FaultPlan, FileStore,
    LsmEngine, MultiOpenOptions, OpenOptions, Policy, RecoveryOptions,
    SeriesId, TableStore, TieredEngine, TieredOpenOptions, TimeRange,
    Watermarks,
};

/// Seed carried by every plan; derives nothing at runtime (determinism),
/// but names the schedule in failure messages.
const SEED: u64 = 0xB10C_5EED;
/// Points per engine workload. Sized so each engine sees well over a
/// hundred I/O ops (crash points) without making the quadratic sweep slow.
const WORKLOAD_POINTS: usize = 48;
/// `sync` every this many appends (odd on purpose, to land syncs in
/// different phases of the flush cycle).
const SYNC_EVERY: usize = 7;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "seplsm-crashsched-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> EngineConfig {
    EngineConfig::new(Policy::conventional(8)).with_sstable_points(8)
}

/// Mixed workload with unique generation times: mostly in-order, every
/// fifth point an out-of-order straggler (gen time ends in 3, so it can
/// never collide with the in-order multiples of ten).
fn workload(n: usize) -> Vec<DataPoint> {
    (0..n as i64)
        .map(|i| {
            let tg = if i % 5 == 4 { i * 10 - 27 } else { i * 10 };
            DataPoint::new(tg, i * 10 + 3, i as f64)
        })
        .collect()
}

/// What the workload managed before the injected failure (if any).
struct Outcome {
    /// Points whose append was *called* (the last one may have failed after
    /// partially logging — recovery may legally resurrect it).
    attempted: usize,
    /// Points whose append returned `Ok`.
    appended: usize,
    /// `appended` as of the last successful `sync` — the durability
    /// contract covers exactly this prefix.
    synced: usize,
}

fn drive<E>(
    engine: &mut E,
    pts: &[DataPoint],
    mut append: impl FnMut(&mut E, DataPoint) -> seplsm::Result<AdmissionOutcome>,
    mut sync: impl FnMut(&mut E) -> seplsm::Result<()>,
) -> Outcome {
    let mut out = Outcome {
        attempted: 0,
        appended: 0,
        synced: 0,
    };
    for (i, p) in pts.iter().enumerate() {
        out.attempted += 1;
        if append(engine, *p).is_err() {
            return out;
        }
        out.appended += 1;
        if (i + 1) % SYNC_EVERY == 0 {
            if sync(engine).is_err() {
                return out;
            }
            out.synced = out.appended;
        }
    }
    if sync(engine).is_ok() {
        out.synced = out.appended;
    }
    out
}

/// The recovery contract, checked against what one pass achieved.
fn check_contract(
    recovered: &[DataPoint],
    pts: &[DataPoint],
    out: &Outcome,
    ctx: &str,
) {
    let mut seen = HashSet::new();
    for p in recovered {
        assert!(
            seen.insert(p.gen_time),
            "{ctx}: duplicate gen_time {} in recovered data",
            p.gen_time
        );
    }
    let attempted: HashSet<i64> =
        pts[..out.attempted].iter().map(|p| p.gen_time).collect();
    for p in recovered {
        assert!(
            attempted.contains(&p.gen_time),
            "{ctx}: recovery invented point {}",
            p.gen_time
        );
    }
    for p in &pts[..out.synced] {
        assert!(
            seen.contains(&p.gen_time),
            "{ctx}: synced point {} lost (synced={}, appended={})",
            p.gen_time,
            out.synced,
            out.appended
        );
    }
}

// ---------------------------------------------------------------- LsmEngine

fn lsm_pass(
    tag: &str,
    plan: &Arc<FaultPlan>,
    pts: &[DataPoint],
) -> (TempDir, Outcome) {
    let dir = TempDir::new(tag);
    let store = FileStore::open(dir.path("tables"))
        .expect("store")
        .with_faults(Arc::clone(plan));
    // Faults attach only after `open` completes, so op numbering starts
    // at the first workload-driven disk touch in every pass.
    let mut engine = OpenOptions::new(config())
        .store(Arc::new(store))
        .wal(dir.path("wal"))
        .manifest(dir.path("manifest"))
        .faults(Arc::clone(plan))
        .open()
        .expect("open");
    let out = drive(&mut engine, pts, LsmEngine::append, |e| e.sync_wal());
    (dir, out)
}

fn lsm_recover_check(
    dir: &TempDir,
    pts: &[DataPoint],
    out: &Outcome,
    ctx: &str,
) {
    let store: Arc<dyn TableStore> =
        Arc::new(FileStore::open(dir.path("tables")).expect("reopen store"));
    let (engine, report) = OpenOptions::new(config())
        .store(store)
        .wal(dir.path("wal"))
        .manifest(dir.path("manifest"))
        .recovery(RecoveryOptions::strict().with_gc_orphans())
        .open_or_recover()
        .unwrap_or_else(|e| panic!("{ctx}: strict recovery failed: {e}"));
    assert!(
        report.quarantined.is_empty(),
        "{ctx}: strict recovery must not quarantine (a crash only truncates)"
    );
    let recovered = engine.scan_all().expect("scan recovered engine");
    check_contract(&recovered, pts, out, ctx);
    engine
        .check_integrity()
        .unwrap_or_else(|e| panic!("{ctx}: integrity audit failed: {e}"));
}

#[test]
fn lsm_engine_survives_a_crash_at_every_io_op() {
    let pts = workload(WORKLOAD_POINTS);
    let plan = FaultPlan::trace_only(SEED);
    let (dir, out) = lsm_pass("lsm-trace", &plan, &pts);
    assert_eq!(out.appended, pts.len(), "trace pass must complete");
    assert_eq!(out.synced, pts.len());
    lsm_recover_check(&dir, &pts, &out, "trace pass");
    drop(dir);
    let total = plan.ops();
    assert!(
        total >= 100,
        "workload too small to be interesting: {total}"
    );
    for k in 0..total {
        let plan = FaultPlan::crash_at(SEED, k);
        let (dir, out) = lsm_pass("lsm-crash", &plan, &pts);
        assert!(plan.is_crashed(), "crash at op {k}/{total} never fired");
        assert!(out.appended < pts.len() || out.synced < pts.len());
        lsm_recover_check(&dir, &pts, &out, &format!("crash at op {k}"));
    }
}

#[test]
fn lsm_engine_survives_torn_writes() {
    let pts = workload(WORKLOAD_POINTS);
    let plan = FaultPlan::trace_only(SEED);
    let (dir, _) = lsm_pass("lsm-torn-trace", &plan, &pts);
    drop(dir);
    let total = plan.ops();
    for k in (0..total).step_by(5) {
        // Tear a little and a lot: 3 bytes clips a record mid-CRC, 64 can
        // wipe whole records (and more than some payloads' length).
        for truncate in [3usize, 64] {
            let plan =
                FaultPlan::new(SEED, Fault::TornWrite { at: k, truncate });
            let (dir, out) = lsm_pass("lsm-torn", &plan, &pts);
            assert!(plan.is_crashed(), "tear at op {k} never fired");
            lsm_recover_check(
                &dir,
                &pts,
                &out,
                &format!("torn write at op {k} (-{truncate} bytes)"),
            );
        }
    }
}

// -------------------------------------------------------------- TieredEngine

fn tiered_pass(
    tag: &str,
    plan: &Arc<FaultPlan>,
    pts: &[DataPoint],
) -> (TempDir, Outcome) {
    let dir = TempDir::new(tag);
    let store = FileStore::open(dir.path("tables"))
        .expect("store")
        .with_faults(Arc::clone(plan));
    let mut engine = TieredOpenOptions::new(config())
        .store(Arc::new(store))
        // Synchronous flushes give every pass the same deterministic op
        // order (append blocks until the worker retires the hand-off).
        .sync_flush()
        .wal(dir.path("wal"))
        .manifest(dir.path("manifest"))
        .faults(Arc::clone(plan))
        .open()
        .expect("open");
    let out = drive(&mut engine, pts, TieredEngine::append, |e| e.sync_wal());
    (dir, out)
}

fn tiered_recover_check(
    dir: &TempDir,
    pts: &[DataPoint],
    out: &Outcome,
    ctx: &str,
) {
    let store: Arc<dyn TableStore> =
        Arc::new(FileStore::open(dir.path("tables")).expect("reopen store"));
    let (engine, report) = TieredOpenOptions::new(config())
        .store(store)
        .wal(dir.path("wal"))
        .manifest(dir.path("manifest"))
        .recovery(RecoveryOptions::strict().with_gc_orphans())
        .open_or_recover()
        .unwrap_or_else(|e| panic!("{ctx}: strict recovery failed: {e}"));
    assert!(
        report.quarantined.is_empty(),
        "{ctx}: strict recovery must not quarantine"
    );
    let (recovered, _) = engine
        .query(TimeRange::new(-1_000, 1_000_000))
        .expect("query recovered engine");
    check_contract(&recovered, pts, out, ctx);
    engine
        .check_integrity()
        .unwrap_or_else(|e| panic!("{ctx}: integrity audit failed: {e}"));
}

#[test]
fn tiered_engine_survives_a_crash_at_every_io_op() {
    let pts = workload(WORKLOAD_POINTS);
    let plan = FaultPlan::trace_only(SEED);
    let (dir, out) = tiered_pass("tiered-trace", &plan, &pts);
    assert_eq!(out.appended, pts.len(), "trace pass must complete");
    tiered_recover_check(&dir, &pts, &out, "trace pass");
    drop(dir);
    let total = plan.ops();
    assert!(
        total >= 100,
        "workload too small to be interesting: {total}"
    );
    for k in 0..total {
        let plan = FaultPlan::crash_at(SEED, k);
        let (dir, out) = tiered_pass("tiered-crash", &plan, &pts);
        assert!(plan.is_crashed(), "crash at op {k}/{total} never fired");
        tiered_recover_check(&dir, &pts, &out, &format!("crash at op {k}"));
    }
}

/// Satellite of the admission-control work: with the watermarks tightened
/// to (slowdown 1, stop 2) every flush cycle drives the engine through a
/// live write stall, so the crash sweep below lands on every I/O op *while
/// a stall is active*. Recovery must come back unstalled — a fresh
/// controller, an append that proceeds, and no stuck `Stalled` verdict.
#[test]
fn tiered_engine_clears_write_stalls_after_any_crash() {
    let tight = || Watermarks::new(1, 2).expect("watermarks");
    let stall_pass = |tag: &str, plan: &Arc<FaultPlan>, pts: &[DataPoint]| {
        let dir = TempDir::new(tag);
        let store = FileStore::open(dir.path("tables"))
            .expect("store")
            .with_faults(Arc::clone(plan));
        let mut engine = TieredOpenOptions::new(config())
            .store(Arc::new(store))
            .sync_flush()
            .admission(tight())
            .wal(dir.path("wal"))
            .manifest(dir.path("manifest"))
            .faults(Arc::clone(plan))
            .open()
            .expect("open");
        let out =
            drive(&mut engine, pts, TieredEngine::append, |e| e.sync_wal());
        let stalls = engine.admission_stats().stalls;
        (dir, out, stalls)
    };
    // Two-thirds of the usual workload: the tight watermarks raise the op
    // count per point, and the sweep is quadratic in ops.
    let pts = workload(WORKLOAD_POINTS * 2 / 3);
    let plan = FaultPlan::trace_only(SEED);
    let (dir, out, stalls) = stall_pass("tiered-stall-trace", &plan, &pts);
    assert_eq!(out.appended, pts.len(), "trace pass must complete");
    assert!(
        stalls > 0,
        "tight watermarks must actually stall the trace pass"
    );
    drop(dir);
    let total = plan.ops();
    assert!(
        total >= 100,
        "workload too small to be interesting: {total}"
    );
    for k in 0..total {
        let plan = FaultPlan::crash_at(SEED, k);
        let (dir, out, _) = stall_pass("tiered-stall-crash", &plan, &pts);
        assert!(plan.is_crashed(), "crash at op {k}/{total} never fired");
        let ctx = format!("stall crash at op {k}");
        // The standard durability contract still holds under stalls...
        tiered_recover_check(&dir, &pts, &out, &ctx);
        // ...and recovery never resumes into a stalled engine: reopen with
        // the same tight watermarks, observe a clear controller, and prove
        // appends proceed (typed outcome, no error).
        let store: Arc<dyn TableStore> = Arc::new(
            FileStore::open(dir.path("tables")).expect("reopen store"),
        );
        let (mut engine, _) = TieredOpenOptions::new(config())
            .store(store)
            .sync_flush()
            .admission(tight())
            .wal(dir.path("wal"))
            .manifest(dir.path("manifest"))
            .recovery(RecoveryOptions::strict().with_gc_orphans())
            .open_or_recover()
            .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
        assert!(
            !engine.admission_stats().currently_stalled,
            "{ctx}: engine recovered into a stuck stall"
        );
        // The append may report `Stalled` if recovery rebuilt a deep L0 —
        // but the stall must resolve *within* the call (the point is
        // accepted) and never be left active afterwards.
        let p = DataPoint::new(1_000_003, 1_000_003, 42.0);
        let _outcome = engine
            .append(p)
            .unwrap_or_else(|e| panic!("{ctx}: post-recovery append: {e}"));
        assert!(
            !engine.admission_stats().currently_stalled,
            "{ctx}: stall left active after post-recovery append"
        );
    }
}

#[test]
fn tiered_engine_absorbs_one_transient_fault_per_op() {
    // FailOnce is not a crash: the worker's bounded retry must absorb it
    // wherever it lands on the flush path, and the workload completes.
    let pts = workload(WORKLOAD_POINTS);
    let plan = FaultPlan::trace_only(SEED);
    let (dir, _) = tiered_pass("tiered-once-trace", &plan, &pts);
    drop(dir);
    let total = plan.ops();
    let mut absorbed = 0u64;
    for k in (0..total).step_by(11) {
        let plan = FaultPlan::new(SEED, Fault::FailOnce { at: k });
        let (dir, out) = tiered_pass("tiered-once", &plan, &pts);
        // The workload either completes (fault absorbed by a retry) or
        // fails cleanly on an unretried path (WAL/manifest appends are
        // writer-side and not retried) — never panics, and recovery holds
        // either way.
        if out.appended == pts.len() && plan.injected_failures() > 0 {
            absorbed += 1;
        }
        tiered_recover_check(
            &dir,
            &pts,
            &out,
            &format!("transient fault at op {k}"),
        );
    }
    assert!(
        absorbed > 0,
        "at least some store-path transients must be absorbed by retry"
    );
}

// -------------------------------------------------------- MultiSeriesEngine

static MULTI_CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn multi_series_engine_recovers_from_any_crash(
        raw in proptest::collection::vec((0u32..3u32, 0i64..1_000i64), 8..48),
        crash_at in 0u64..300u64,
    ) {
        // Unique (series, gen_time) pairs keep the contract set-based.
        let mut seen = HashSet::new();
        let pts: Vec<(u32, DataPoint)> = raw
            .into_iter()
            .filter(|(s, tg)| seen.insert((*s, *tg)))
            .map(|(s, tg)| (s, DataPoint::new(tg, tg + 5, f64::from(s))))
            .collect();
        let case = MULTI_CASE.fetch_add(1, Ordering::Relaxed);
        let dir = TempDir::new(&format!("multi-{case}"));
        let plan = FaultPlan::crash_at(SEED, crash_at);
        let mut per_series: std::collections::HashMap<u32, Vec<i64>> =
            std::collections::HashMap::new();
        let mut synced: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        {
            let store = FileStore::open(dir.path("tables"))
                .expect("store")
                .with_faults(Arc::clone(&plan));
            let mut engine = MultiOpenOptions::new(config())
                .store(Arc::new(store))
                .durable_dir(dir.path("meta"))
                .faults(Arc::clone(&plan))
                .open()
                .expect("durable engine");
            let mut since_sync = 0usize;
            for (s, p) in &pts {
                if engine.append(SeriesId(*s), *p).is_err() {
                    break;
                }
                per_series.entry(*s).or_default().push(p.gen_time);
                since_sync += 1;
                if since_sync >= 9 {
                    since_sync = 0;
                    if engine.sync_wal_all().is_err() {
                        break;
                    }
                    for (s, appended) in &per_series {
                        synced.insert(*s, appended.len());
                    }
                }
            }
            if engine.sync_wal_all().is_ok() {
                for (s, appended) in &per_series {
                    synced.insert(*s, appended.len());
                }
            }
        }
        let store: Arc<dyn TableStore> = Arc::new(
            FileStore::open(dir.path("tables")).expect("reopen store"),
        );
        let (engine, _report) = MultiOpenOptions::new(config())
            .store(store)
            .durable_dir(dir.path("meta"))
            .recovery(RecoveryOptions::strict().with_gc_orphans())
            .open_or_recover()
            .expect("strict recovery after crash");
        engine.check_integrity().expect("integrity audit");
        for (s, appended) in &per_series {
            let Ok((recovered, _)) =
                engine.query(SeriesId(*s), TimeRange::new(-10, 2_000))
            else {
                // The series may not have reached its first durable write.
                prop_assert_eq!(synced.get(s).copied().unwrap_or(0), 0);
                continue;
            };
            let got: HashSet<i64> =
                recovered.iter().map(|p| p.gen_time).collect();
            prop_assert_eq!(got.len(), recovered.len(), "duplicates");
            // Synced prefix survives; nothing beyond the appends appears.
            let synced_len = synced.get(s).copied().unwrap_or(0);
            for tg in &appended[..synced_len] {
                prop_assert!(got.contains(tg), "synced point {} lost", tg);
            }
            // `attempted` includes at most one point past `appended`
            // (the one whose append failed mid-flight); anything recovered
            // must come from this series' appends.
            let attempted: HashSet<i64> = pts
                .iter()
                .filter(|(series, _)| series == s)
                .map(|(_, p)| p.gen_time)
                .collect();
            for tg in &got {
                prop_assert!(
                    attempted.contains(tg),
                    "recovery invented point {}",
                    tg
                );
            }
        }
    }
}

/// The pooled-flush variant of the fleet crash schedule: with several flush
/// workers live, a crash during `flush_all` lands on whichever worker's
/// store/WAL op hits the schedule first — every engine must still be handed
/// back to the fleet, and recovery must uphold the same contract (synced
/// prefix survives, nothing is invented) at every crash point.
#[test]
fn pooled_flush_crash_schedule_preserves_the_durability_contract() {
    for crash_at in [6u64, 25, 60, 110, 200] {
        let dir = TempDir::new(&format!("multi-pool-{crash_at}"));
        let plan = FaultPlan::crash_at(SEED, crash_at);
        let pts = workload(WORKLOAD_POINTS);
        let series_of = |i: usize| (i % 4) as u32;
        let mut appended: std::collections::HashMap<u32, Vec<i64>> =
            std::collections::HashMap::new();
        let mut synced: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        {
            let store = FileStore::open(dir.path("tables"))
                .expect("store")
                .with_faults(Arc::clone(&plan));
            let mut engine = MultiOpenOptions::new(config())
                .store(Arc::new(store))
                .durable_dir(dir.path("meta"))
                .workers(3)
                .faults(Arc::clone(&plan))
                .open()
                .expect("durable engine");
            for (i, p) in pts.iter().enumerate() {
                if engine.append(SeriesId(series_of(i)), *p).is_err() {
                    break;
                }
                appended.entry(series_of(i)).or_default().push(p.gen_time);
            }
            if engine.sync_wal_all().is_ok() {
                for (s, v) in &appended {
                    synced.insert(*s, v.len());
                }
            }
            // May crash mid-pool; every series engine is retained either
            // way, and the fleet keeps answering for the survivors.
            if engine.flush_all().is_err() {
                assert_eq!(
                    engine.len(),
                    appended.len(),
                    "crash_at {crash_at}: a failed pooled flush lost series"
                );
            }
            // Crash: dropped here.
        }
        let store: Arc<dyn TableStore> = Arc::new(
            FileStore::open(dir.path("tables")).expect("reopen store"),
        );
        let (engine, _report) = MultiOpenOptions::new(config())
            .store(store)
            .durable_dir(dir.path("meta"))
            .recovery(RecoveryOptions::strict().with_gc_orphans())
            .open_or_recover()
            .expect("strict recovery after pooled-flush crash");
        engine.check_integrity().expect("integrity audit");
        for (s, appended) in &appended {
            let Ok((recovered, _)) =
                engine.query(SeriesId(*s), TimeRange::new(-100, 2_000))
            else {
                assert_eq!(
                    synced.get(s).copied().unwrap_or(0),
                    0,
                    "crash_at {crash_at}: synced series {s} missing"
                );
                continue;
            };
            let got: HashSet<i64> =
                recovered.iter().map(|p| p.gen_time).collect();
            assert_eq!(got.len(), recovered.len(), "duplicates");
            let synced_len = synced.get(s).copied().unwrap_or(0);
            for tg in &appended[..synced_len] {
                assert!(
                    got.contains(tg),
                    "crash_at {crash_at}: synced point {tg} lost"
                );
            }
            let attempted: HashSet<i64> = pts
                .iter()
                .enumerate()
                .filter(|(i, _)| series_of(*i) == *s)
                .map(|(_, p)| p.gen_time)
                .collect();
            for tg in &got {
                assert!(
                    attempted.contains(tg),
                    "crash_at {crash_at}: recovery invented point {tg}"
                );
            }
        }
    }
}

// ------------------------------------------------------------------ Salvage

/// A crash can publish a table file whose data region hit disk but whose
/// v3 footer did not (torn tail). Strict recovery refuses the store;
/// salvage must quarantine the table and — thanks to the footer-based
/// probe — name the damage precisely instead of raising a generic CRC
/// error.
#[test]
fn salvage_names_a_torn_v3_table_by_its_missing_footer() {
    use seplsm_lsm::sstable::format::{sniff_version, VERSION_PRUNED};

    let dir = TempDir::new("salvage-torn-v3");
    let pts = workload(64);
    {
        let store =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let mut engine = OpenOptions::new(config())
            .store(store)
            .wal(dir.path("wal"))
            .manifest(dir.path("manifest"))
            .open()
            .expect("open");
        for p in &pts {
            engine.append(*p).expect("append");
        }
        engine.flush_all().expect("flush");
        engine.sync_wal().expect("sync");
    }
    let victim = std::fs::read_dir(dir.path("tables"))
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "sst"))
        .expect("at least one table");
    let bytes = std::fs::read(&victim).expect("read table");
    assert_eq!(
        sniff_version(&bytes),
        Some(VERSION_PRUNED),
        "FileStore must write v3 by default"
    );
    // Chop the tail: footer (and part of the metaindex) never hit disk.
    std::fs::write(&victim, &bytes[..bytes.len() - 25]).expect("tear table");

    let store: Arc<dyn TableStore> =
        Arc::new(FileStore::open(dir.path("tables")).expect("store"));
    assert!(
        OpenOptions::new(config())
            .store(Arc::clone(&store))
            .open_or_recover()
            .is_err(),
        "strict recovery must refuse a torn table"
    );
    let (engine, report) = OpenOptions::new(config())
        .store(store)
        .wal(dir.path("wal"))
        .manifest(dir.path("manifest"))
        .recovery(RecoveryOptions::salvage().with_gc_orphans())
        .open_or_recover()
        .expect("salvage recovery");
    assert_eq!(report.quarantined.len(), 1, "one torn table");
    assert!(
        report.quarantined[0].reason.contains("torn v3 write"),
        "probe must name the missing footer, got: {}",
        report.quarantined[0].reason
    );
    let recovered = engine.scan_all().expect("scan survivors");
    assert!(!recovered.is_empty(), "survivors must still be served");
    engine.check_integrity().expect("integrity after salvage");
}

/// A torn write can also land the other way round: the footer and
/// metaindex hit disk intact but an index sector holding the per-block
/// pre-aggregates was written garbled. The layout probe passes (the
/// footer chain is valid and the index CRC is re-sealed here to simulate
/// a coherent-but-lying sector), so only `probe_table`'s full decode —
/// which recomputes every block's aggregates and compares bitwise —
/// can catch the lie before a pushdown fold trusts it. Strict recovery
/// must refuse the store; salvage must quarantine the table.
#[test]
fn salvage_quarantines_a_v3_table_with_lying_index_pre_aggregates() {
    use seplsm_lsm::sstable::crc32::crc32;
    use seplsm_lsm::sstable::format::{
        parse_v3_footer, parse_v3_metaindex, sniff_version, VERSION_PRUNED,
    };

    let dir = TempDir::new("salvage-lying-agg");
    let pts = workload(64);
    {
        let store =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let mut engine = OpenOptions::new(config())
            .store(store)
            .wal(dir.path("wal"))
            .manifest(dir.path("manifest"))
            .open()
            .expect("open");
        for p in &pts {
            engine.append(*p).expect("append");
        }
        engine.flush_all().expect("flush");
        engine.sync_wal().expect("sync");
    }
    let victim = std::fs::read_dir(dir.path("tables"))
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "sst"))
        .expect("at least one table");
    let mut bytes = std::fs::read(&victim).expect("read table");
    assert_eq!(sniff_version(&bytes), Some(VERSION_PRUNED));
    let meta_span = parse_v3_footer(&bytes).expect("footer");
    let (index_span, _) = parse_v3_metaindex(
        &bytes[meta_span.offset as usize..meta_span.end() as usize],
    )
    .expect("metaindex");
    // First index entry: fixed index header is 24 bytes, the entry's
    // min-bits field sits at +28 (after first/last/count/offset/len).
    // Flipping a mantissa bit keeps the entry parseable — unlike a lying
    // agg_count, a lying min survives `parse_v3_index` — so only the
    // decode-time aggregate audit can refute it.
    let at = index_span.offset as usize + 24 + 28;
    bytes[at] ^= 0x01;
    // Re-seal the index CRC: the sector is internally coherent, it lies.
    let body_end = index_span.end() as usize - 4;
    let crc = crc32(&bytes[index_span.offset as usize..body_end]);
    bytes[body_end..body_end + 4].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&victim, &bytes).expect("corrupt table");

    let store: Arc<dyn TableStore> =
        Arc::new(FileStore::open(dir.path("tables")).expect("store"));
    assert!(
        OpenOptions::new(config())
            .store(Arc::clone(&store))
            .open_or_recover()
            .is_err(),
        "strict recovery must refuse lying pre-aggregates"
    );
    let (engine, report) = OpenOptions::new(config())
        .store(store)
        .wal(dir.path("wal"))
        .manifest(dir.path("manifest"))
        .recovery(RecoveryOptions::salvage().with_gc_orphans())
        .open_or_recover()
        .expect("salvage recovery");
    assert_eq!(report.quarantined.len(), 1, "one lying table");
    assert!(
        report.quarantined[0]
            .reason
            .contains("aggregates disagree with index"),
        "probe must name the aggregate mismatch, got: {}",
        report.quarantined[0].reason
    );
    let recovered = engine.scan_all().expect("scan survivors");
    assert!(!recovered.is_empty(), "survivors must still be served");
    engine.check_integrity().expect("integrity after salvage");
    let quarantine = dir.path("tables").join("quarantine");
    assert_eq!(
        std::fs::read_dir(&quarantine)
            .expect("quarantine dir")
            .count(),
        1,
        "quarantine directory must hold the lying table"
    );
}

#[test]
fn salvage_recovery_quarantines_corruption_and_serves_survivors() {
    let dir = TempDir::new("salvage");
    let pts = workload(64);
    {
        let store =
            Arc::new(FileStore::open(dir.path("tables")).expect("store"));
        let mut engine = OpenOptions::new(config())
            .store(store)
            .wal(dir.path("wal"))
            .manifest(dir.path("manifest"))
            .open()
            .expect("open");
        for p in &pts {
            engine.append(*p).expect("append");
        }
        engine.flush_all().expect("flush");
        engine.sync_wal().expect("sync");
    }
    // Deliberately corrupt one stored table.
    let victim = std::fs::read_dir(dir.path("tables"))
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "sst"))
        .expect("at least one table");
    let mut bytes = std::fs::read(&victim).expect("read table");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&victim, &bytes).expect("corrupt table");

    // Strict recovery refuses the damaged store.
    let store: Arc<dyn TableStore> =
        Arc::new(FileStore::open(dir.path("tables")).expect("store"));
    assert!(
        OpenOptions::new(config())
            .store(Arc::clone(&store))
            .open_or_recover()
            .is_err(),
        "strict recovery must refuse a corrupt table"
    );

    // Salvage recovery quarantines it and serves everything else.
    let (engine, report) = OpenOptions::new(config())
        .store(store)
        .wal(dir.path("wal"))
        .manifest(dir.path("manifest"))
        .recovery(RecoveryOptions::salvage().with_gc_orphans())
        .open_or_recover()
        .expect("salvage recovery");
    assert_eq!(report.quarantined.len(), 1, "exactly one table was damaged");
    assert_eq!(report.lost_ranges.len(), 1);
    assert!(!report.is_clean());
    assert!(!report.quarantined[0].reason.is_empty());
    let lost = report.lost_ranges[0];
    let recovered = engine.scan_all().expect("scan survivors");
    assert!(!recovered.is_empty(), "survivors must still be served");
    // Accounting: every point is either served or inside a reported loss.
    for p in &pts {
        let served = recovered.iter().any(|q| q.gen_time == p.gen_time);
        assert!(
            served || lost.contains(p.gen_time),
            "point {} neither recovered nor reported lost",
            p.gen_time
        );
    }
    engine.check_integrity().expect("integrity after salvage");
    // The damaged bytes moved aside for forensics, not deleted.
    let quarantine = dir.path("tables").join("quarantine");
    assert_eq!(
        std::fs::read_dir(&quarantine)
            .expect("quarantine dir")
            .count(),
        1,
        "quarantine directory must hold the damaged table"
    );
}
