//! Property-based tests of the durable formats: SSTable v1/v2 round-trips
//! under arbitrary point sets, range-read consistency, and WAL/manifest
//! replay under arbitrary operation sequences.

use proptest::prelude::*;
use seplsm::{DataPoint, TimeRange};
use seplsm_lsm::sstable::format::{
    decode, decode_range, encode, encode_with, Compression, EncodeOptions,
};
use seplsm_lsm::sstable::{SsTableId, SsTableMeta};
use seplsm_lsm::{Manifest, Wal};

/// Strategy: a sorted, unique-gen-time point vector.
fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<DataPoint>> {
    (
        proptest::collection::btree_set(-1_000_000i64..1_000_000, 1..max_len),
        any::<u64>(),
    )
        .prop_map(|(tgs, seed)| {
            tgs.into_iter()
                .enumerate()
                .map(|(i, tg)| {
                    // Deterministic but varied delays/values from the seed.
                    let h = seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(i as u64);
                    let delay = (h % 100_000) as i64 - 1_000;
                    // Fixed exponent keeps the value finite and non-NaN so
                    // PartialEq comparisons are exact; the mantissa is noisy.
                    let value = f64::from_bits(
                        ((h ^ h.rotate_left(31)) & 0x000F_FFFF_FFFF_FFFF)
                            | 0x3FE0_0000_0000_0000,
                    );
                    DataPoint::with_delay(tg, delay, value)
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn v1_and_v2_round_trip_arbitrary_points(points in arb_points(300)) {
        let v1 = encode(&points).expect("v1 encode");
        prop_assert_eq!(&decode(&v1).expect("v1 decode"), &points);
        for block_points in [1usize, 7, 128] {
            let v2 = encode_with(
                &points,
                &EncodeOptions {
                    compression: Compression::TimeSeries,
                    block_points,
                },
            )
            .expect("v2 encode");
            let back = decode(&v2).expect("v2 decode");
            prop_assert_eq!(back.len(), points.len());
            for (a, b) in back.iter().zip(points.iter()) {
                prop_assert_eq!(a.gen_time, b.gen_time);
                prop_assert_eq!(a.arrival_time, b.arrival_time);
                prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
            }
        }
    }

    #[test]
    fn range_reads_agree_with_filtered_full_decode(
        points in arb_points(300),
        start in -1_100_000i64..1_100_000,
        len in 0i64..500_000,
    ) {
        let range = TimeRange::new(start, start + len);
        let expected: Vec<DataPoint> = points
            .iter()
            .copied()
            .filter(|p| range.contains(p.gen_time))
            .collect();
        for options in [
            EncodeOptions::default(),
            EncodeOptions::compressed(),
            EncodeOptions { compression: Compression::TimeSeries, block_points: 13 },
        ] {
            let bytes = encode_with(&points, &options).expect("encode");
            let read = decode_range(&bytes, range).expect("range read");
            prop_assert_eq!(&read.points, &expected);
            prop_assert!(read.points_scanned >= expected.len() as u64);
        }
    }

    #[test]
    fn v2_flipped_bytes_never_pass_validation(
        points in arb_points(100),
        flip in any::<(usize, u8)>(),
    ) {
        let bytes = encode_with(&points, &EncodeOptions::compressed())
            .expect("encode")
            .to_vec();
        let (pos, mask) = flip;
        let pos = pos % bytes.len();
        let mask = if mask == 0 { 1 } else { mask };
        let mut bad = bytes.clone();
        bad[pos] ^= mask;
        // Either the full decode errors, or (if the flip cancelled out —
        // impossible for a single xor) the data is unchanged.
        prop_assert!(decode(&bad).is_err());
    }

    #[test]
    fn wal_replays_exactly_what_was_appended(points in arb_points(200)) {
        let path = std::env::temp_dir().join(format!(
            "seplsm-prop-wal-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).expect("open");
            for p in &points {
                wal.append(p).expect("append");
            }
            wal.sync().expect("sync");
        }
        let replayed = Wal::replay(&path).expect("replay");
        prop_assert_eq!(replayed.len(), points.len());
        for (a, b) in replayed.iter().zip(points.iter()) {
            prop_assert_eq!(a.gen_time, b.gen_time);
            prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn manifest_replay_tracks_arbitrary_add_remove_sequences(
        ops in proptest::collection::vec((any::<bool>(), 0u64..32), 1..120),
    ) {
        let path = std::env::temp_dir().join(format!(
            "seplsm-prop-manifest-{}-{:?}.manifest",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut reference: Vec<SsTableMeta> = Vec::new();
        {
            let mut manifest = Manifest::open(&path).expect("open");
            for (add, id) in &ops {
                if *add {
                    let meta = SsTableMeta {
                        id: SsTableId(*id),
                        range: TimeRange::new(*id as i64 * 100, *id as i64 * 100 + 99),
                        count: 10,
                    };
                    manifest.log_add(&meta).expect("add");
                    reference.push(meta);
                } else {
                    manifest.log_remove(SsTableId(*id)).expect("remove");
                    reference.retain(|m| m.id != SsTableId(*id));
                }
            }
            manifest.sync().expect("sync");
        }
        let live = Manifest::replay(&path).expect("replay");
        prop_assert_eq!(live, reference);
        let _ = std::fs::remove_file(&path);
    }
}
