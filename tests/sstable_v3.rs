//! Integration tests of the v3 pruned SSTable layout: cross-version
//! round-trips, pruning-filter no-false-negatives under arbitrary delay
//! distributions, queries over levels holding a mix of format versions
//! (the live-upgrade shape), and filter-cache coherence across compaction.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use proptest::prelude::*;
use seplsm::{DataPoint, TimeRange};
use seplsm_lsm::sstable::format::{
    decode, decode_range, encode_with, read_table_index, sniff_version,
    ByteSpan, EncodeOptions, VERSION_PRUNED,
};
use seplsm_lsm::sstable::{RangeRead, SsTableId, SsTableMeta, TableFilter};
use seplsm_lsm::store::load_index;
use seplsm_lsm::{
    BlockCache, EngineConfig, OpenOptions, QueryStats, TableStore,
};
use seplsm_types::{Error, Policy, Result};

/// Deterministic but varied points: unique ascending gen times with
/// hash-derived delays and values.
fn points_from(tgs: &[i64], seed: u64) -> Vec<DataPoint> {
    tgs.iter()
        .enumerate()
        .map(|(i, &tg)| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64);
            let delay = (h % 100_000) as i64 - 1_000;
            let value = f64::from_bits(
                ((h ^ h.rotate_left(31)) & 0x000F_FFFF_FFFF_FFFF)
                    | 0x3FE0_0000_0000_0000,
            );
            DataPoint::with_delay(tg, delay, value)
        })
        .collect()
}

fn arb_gen_times(max_len: usize) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::btree_set(-1_000_000i64..1_000_000, 1..max_len)
        .prop_map(|s| s.into_iter().collect())
}

/// A [`TableStore`] that encodes successive tables with rotating format
/// versions (v1 flat, v2 compressed, v3 pruned), so one engine's levels
/// hold a mix — the live-upgrade shape: old tables stay readable while
/// new writes carry pruning metadata.
#[derive(Default)]
struct RotatingStore {
    inner: Mutex<RotatingInner>,
}

#[derive(Default)]
struct RotatingInner {
    next_id: u64,
    tables: HashMap<SsTableId, Bytes>,
}

impl RotatingStore {
    fn bytes_for(&self, id: SsTableId) -> Result<Bytes> {
        self.inner
            .lock()
            .expect("store mutex")
            .tables
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::Corrupt(format!("no table {id}")))
    }
}

impl TableStore for RotatingStore {
    fn put(&self, points: &[DataPoint]) -> Result<(SsTableMeta, usize)> {
        let mut inner = self.inner.lock().expect("store mutex");
        let id = SsTableId(inner.next_id);
        let options = match inner.next_id % 3 {
            0 => EncodeOptions::flat(),
            1 => EncodeOptions::compressed(),
            _ => EncodeOptions::pruned(),
        };
        inner.next_id += 1;
        let bytes = encode_with(points, &options)?;
        let size = bytes.len();
        inner.tables.insert(id, bytes);
        Ok((SsTableMeta::describe(id, points), size))
    }

    fn get(&self, id: SsTableId) -> Result<Vec<DataPoint>> {
        decode(&self.bytes_for(id)?)
    }

    fn get_range(&self, id: SsTableId, range: TimeRange) -> Result<RangeRead> {
        decode_range(&self.bytes_for(id)?, range)
    }

    fn delete(&self, id: SsTableId) -> Result<()> {
        self.inner.lock().expect("store mutex").tables.remove(&id);
        Ok(())
    }

    fn list(&self) -> Result<Vec<SsTableId>> {
        let mut ids: Vec<SsTableId> = self
            .inner
            .lock()
            .expect("store mutex")
            .tables
            .keys()
            .copied()
            .collect();
        ids.sort();
        Ok(ids)
    }

    fn read_raw(&self, id: SsTableId) -> Result<Option<Bytes>> {
        Ok(self
            .inner
            .lock()
            .expect("store mutex")
            .tables
            .get(&id)
            .cloned())
    }

    fn table_len(&self, id: SsTableId) -> Result<Option<u64>> {
        Ok(Some(self.bytes_for(id)?.len() as u64))
    }

    fn read_span(
        &self,
        id: SsTableId,
        span: ByteSpan,
    ) -> Result<Option<Bytes>> {
        let bytes = self.bytes_for(id)?;
        let start = span.offset as usize;
        let end = span.end() as usize;
        if end > bytes.len() || start > end {
            return Err(Error::Corrupt(format!(
                "span {}..{} outside table of {} bytes",
                span.offset,
                span.end(),
                bytes.len()
            )));
        }
        Ok(Some(bytes.slice(start..end)))
    }

    fn may_contain(
        &self,
        id: SsTableId,
        range: TimeRange,
    ) -> Result<Option<bool>> {
        match load_index(self, id)? {
            Some((index, _)) => Ok(Some(index.may_contain(range))),
            None => Ok(None),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The filter must admit every stored generation time, whatever the
    /// delay distribution behind it — a false negative would make a query
    /// silently drop stored data.
    #[test]
    fn filter_has_no_false_negatives(
        tgs in arb_gen_times(400),
        seed in any::<u64>(),
    ) {
        let filter = TableFilter::build(&tgs).expect("build");
        for &tg in &tgs {
            prop_assert!(filter.may_contain(TimeRange::new(tg, tg)));
        }
        // Any window containing a stored key must be admitted too.
        let mid = tgs[tgs.len() / 2];
        prop_assert!(
            filter.may_contain(TimeRange::new(mid - (seed % 64) as i64, mid))
        );
    }

    /// Pruned v3 range reads return exactly what an unpruned full decode
    /// would after filtering, and the index never prunes a non-empty range.
    #[test]
    fn v3_pruning_never_loses_points(
        tgs in arb_gen_times(300),
        seed in any::<u64>(),
        start in -1_100_000i64..1_100_000,
        len in 0i64..400_000,
    ) {
        let points = points_from(&tgs, seed);
        let bytes = encode_with(&points, &EncodeOptions::pruned())
            .expect("encode");
        prop_assert_eq!(sniff_version(&bytes), Some(VERSION_PRUNED));
        let range = TimeRange::new(start, start + len);
        let expected: Vec<DataPoint> = points
            .iter()
            .copied()
            .filter(|p| range.contains(p.gen_time))
            .collect();
        let read = decode_range(&bytes, range).expect("range read");
        prop_assert_eq!(&read.points, &expected);
        let index = read_table_index(&bytes).expect("index");
        if !expected.is_empty() {
            prop_assert!(
                index.may_contain(range),
                "index pruned a range holding {} stored points",
                expected.len()
            );
        }
    }

    /// The same points encode under every version and decode back to the
    /// same data — the cross-version round-trip a live upgrade relies on.
    #[test]
    fn all_versions_round_trip_identically(
        tgs in arb_gen_times(200),
        seed in any::<u64>(),
    ) {
        let points = points_from(&tgs, seed);
        for options in [
            EncodeOptions::flat(),
            EncodeOptions::compressed(),
            EncodeOptions::pruned(),
        ] {
            let bytes = encode_with(&points, &options).expect("encode");
            let back = decode(&bytes).expect("decode");
            prop_assert_eq!(back.len(), points.len());
            for (a, b) in back.iter().zip(points.iter()) {
                prop_assert_eq!(a.gen_time, b.gen_time);
                prop_assert_eq!(a.arrival_time, b.arrival_time);
                prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
            }
        }
    }
}

/// An engine whose store mixes v1/v2/v3 tables answers queries exactly as
/// a reference scan does, and v3 tables still prune point misses.
#[test]
fn mixed_version_levels_answer_queries_exactly() {
    let store = Arc::new(RotatingStore::default());
    let mut engine = OpenOptions::new(
        EngineConfig::new(Policy::conventional(32))
            .with_sstable_points(32)
            .with_block_reads(),
    )
    .store(Arc::clone(&store) as Arc<dyn TableStore>)
    .open()
    .expect("open");
    // In-order appends over gen times 0, 10, 20, … so flushed tables tile
    // the axis without overlapping and point misses fall between keys.
    for i in 0..400i64 {
        engine
            .append(DataPoint::new(i * 10, i * 10 + 3, i as f64))
            .expect("append");
    }
    engine.flush_all().expect("flush");
    let all = engine.scan_all().expect("scan");
    assert_eq!(all.len(), 400);

    let mut pruned_total = QueryStats::default();
    for (start, end) in [(0i64, 500i64), (1_234, 2_345), (3_999, 4_001)] {
        let range = TimeRange::new(start, end);
        let expected: Vec<DataPoint> = all
            .iter()
            .copied()
            .filter(|p| range.contains(p.gen_time))
            .collect();
        let (got, stats) = engine.query(range).expect("query");
        assert_eq!(got, expected, "window [{start} .. {end}]");
        pruned_total.accumulate(&stats);
    }
    // Point probes between stored keys: present keys must be found, and
    // the v3 third of the tables must prune the misses via their filters.
    for i in 0..400i64 {
        assert!(engine.get(i * 10).expect("get").is_some(), "key {}", i * 10);
        let (miss, stats) = engine
            .query(TimeRange::new(i * 10 + 5, i * 10 + 5))
            .expect("miss query");
        assert!(miss.is_empty());
        pruned_total.accumulate(&stats);
    }
    assert!(
        pruned_total.tables_pruned > 0,
        "mixed run never pruned: {pruned_total:?}"
    );
}

/// Compaction deleting a v3 input must leave no stale index/filter in the
/// shared cache: a later lookup of the dead table's metadata misses.
#[test]
fn compaction_leaves_no_stale_filter_in_the_cache() {
    let store = Arc::new(RotatingStore::default());
    let cache = BlockCache::with_capacity(64 * 1024);
    let mut engine = OpenOptions::new(
        EngineConfig::new(Policy::conventional(16))
            .with_sstable_points(16)
            .with_block_reads(),
    )
    .store(Arc::clone(&store) as Arc<dyn TableStore>)
    .cache(Arc::clone(&cache))
    .open()
    .expect("open");
    // Out-of-order batches force merges that consume earlier tables.
    for round in 0..20i64 {
        for i in 0..16i64 {
            let tg = round * 7 + i * 40;
            engine
                .append(DataPoint::new(tg, tg + 1, tg as f64))
                .expect("append");
        }
        engine.flush_all().expect("flush");
        // Warm the cache with pruning judgements over the whole axis.
        engine.query(TimeRange::new(0, 1_000)).expect("query");
    }
    let metrics = engine.metrics();
    assert!(
        metrics.compactions > 0,
        "workload must compact: {metrics:?}"
    );
    let live = store.list().expect("list");
    let next_id = store.inner.lock().expect("store mutex").next_id;
    let dead = (0..next_id)
        .map(SsTableId)
        .filter(|id| !live.contains(id))
        .count();
    assert!(dead > 0, "some input tables must have been deleted");
    for id in (0..next_id).map(SsTableId) {
        if !live.contains(&id) {
            assert!(
                cache.lookup_index(id).is_none(),
                "stale index/filter for deleted {id}"
            );
        }
    }
}
