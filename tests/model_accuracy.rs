//! Cross-crate accuracy tests: the paper's models (`seplsm-core`) against
//! ground truth measured on the storage engine (`seplsm-lsm`) over generated
//! workloads (`seplsm-workload`).
//!
//! Tolerances reflect the paper's own accuracy claims: ζ(n) tracks the
//! measured subsequent counts closely (Fig. 5), while the WA models
//! systematically *underestimate* because a real compaction rewrites whole
//! SSTables, not individual subsequent points (§III, §V-B).

use std::sync::Arc;

use seplsm::{
    tune, EngineConfig, LogNormal, LsmEngine, Policy, SyntheticWorkload,
    TunerOptions, WaModel, ZetaModel,
};
use seplsm_types::DataPoint;

fn measure_metrics(
    points: &[DataPoint],
    policy: Policy,
    sstable: usize,
    probe: bool,
) -> seplsm_lsm::Metrics {
    let mut config = EngineConfig::new(policy).with_sstable_points(sstable);
    if probe {
        config = config.with_subsequent_probe();
    }
    let mut engine = LsmEngine::in_memory(config).expect("engine");
    for p in points {
        engine.append(*p).expect("append");
    }
    engine.metrics().clone()
}

#[test]
fn zeta_tracks_measured_subsequent_counts() {
    // The Fig. 5 setup at two buffer sizes and two distributions.
    for (sigma, tol) in [(1.5, 0.25), (1.75, 0.2)] {
        let dist = LogNormal::new(4.0, sigma);
        let dataset = SyntheticWorkload::new(50, dist, 120_000, 55).generate();
        let model = ZetaModel::new(Arc::new(dist), 50.0);
        for n in [64usize, 256] {
            let metrics =
                measure_metrics(&dataset, Policy::conventional(n), n, true);
            let measured = metrics.mean_subsequent().expect("compactions");
            let predicted = model.zeta(n);
            let rel = (predicted - measured).abs() / measured;
            assert!(
                rel < tol,
                "sigma={sigma}, n={n}: measured {measured:.1}, model {predicted:.1} (rel {rel:.3})"
            );
        }
    }
}

#[test]
fn r_c_model_brackets_measured_wa() {
    let dist = LogNormal::new(5.0, 2.0);
    let dataset = SyntheticWorkload::new(50, dist, 150_000, 56).generate();
    let model = WaModel::new(Arc::new(dist), 50.0, 512);
    let measured =
        measure_metrics(&dataset, Policy::conventional(512), 512, false)
            .write_amplification();
    let predicted = model.wa_conventional();
    // The model never overestimates by much, and the SSTable-granularity gap
    // is bounded (paper: < 1 per merge in the idealised analysis; we allow
    // the observed envelope).
    assert!(
        predicted <= measured + 0.5,
        "model {predicted:.3} far above measured {measured:.3}"
    );
    assert!(
        measured - predicted < 2.0,
        "model {predicted:.3} too far below measured {measured:.3}"
    );
}

#[test]
fn r_s_curve_shape_matches_measurement() {
    // The model's U-curve and the measured curve must agree on shape: the
    // measured minimum lies in the model's low basin, and both rank the
    // extreme splits as worse.
    let dist = LogNormal::new(5.0, 2.0);
    let dataset = SyntheticWorkload::new(50, dist, 120_000, 57).generate();
    let model = WaModel::new(Arc::new(dist), 50.0, 512);

    let grid = [32usize, 128, 256, 384, 480];
    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    for &n_seq in &grid {
        measured.push(
            measure_metrics(
                &dataset,
                Policy::separation(512, n_seq).expect("policy"),
                512,
                false,
            )
            .write_amplification(),
        );
        predicted.push(model.wa_separation(n_seq).expect("estimate").wa);
    }
    // Rank correlation on the coarse grid: the highest-WA split must agree.
    let argmax = |v: &[f64]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0
    };
    assert_eq!(
        argmax(&measured),
        argmax(&predicted),
        "measured {measured:?} vs predicted {predicted:?}"
    );
    // Interior beats the worst edge in both.
    assert!(measured[2] < measured[4]);
    assert!(predicted[2] < predicted[4]);
}

#[test]
fn tuner_decision_matches_ground_truth_on_contrasting_workloads() {
    // Mild disorder: pi_c should win. Severe disorder: pi_s should win.
    let cases = [
        (LogNormal::new(2.0, 0.5), 50i64, false),
        (LogNormal::new(5.0, 2.0), 10i64, true),
    ];
    for (dist, dt, expect_separation) in cases {
        let dataset = SyntheticWorkload::new(dt, dist, 100_000, 58).generate();
        let model = WaModel::new(Arc::new(dist), dt as f64, 512);
        let outcome = tune(&model, TunerOptions::online(512)).expect("tune");
        assert_eq!(
            outcome.chose_separation(),
            expect_separation,
            "dist {dist:?}, dt={dt}: r_c={:.3}, r_s*={:.3}",
            outcome.r_c,
            outcome.r_s_star
        );
        // Verify the decision against measured WA.
        let wa_c =
            measure_metrics(&dataset, Policy::conventional(512), 512, false)
                .write_amplification();
        let wa_s = measure_metrics(
            &dataset,
            Policy::separation(512, outcome.best_n_seq).expect("policy"),
            512,
            false,
        )
        .write_amplification();
        assert_eq!(
            wa_s < wa_c,
            expect_separation,
            "ground truth disagrees: wa_c={wa_c:.3}, wa_s={wa_s:.3}"
        );
    }
}

#[test]
fn higher_disorder_raises_both_models_and_measurements() {
    // The monotonicity the paper reads off Fig. 9: sigma up => WA up.
    let mild = LogNormal::new(4.0, 1.5);
    let wild = LogNormal::new(4.0, 2.0);
    let data_mild = SyntheticWorkload::new(50, mild, 80_000, 59).generate();
    let data_wild = SyntheticWorkload::new(50, wild, 80_000, 59).generate();
    let model_mild = WaModel::new(Arc::new(mild), 50.0, 256);
    let model_wild = WaModel::new(Arc::new(wild), 50.0, 256);
    assert!(model_wild.wa_conventional() > model_mild.wa_conventional());
    let wa_mild =
        measure_metrics(&data_mild, Policy::conventional(256), 256, false)
            .write_amplification();
    let wa_wild =
        measure_metrics(&data_wild, Policy::conventional(256), 256, false)
            .write_amplification();
    assert!(
        wa_wild > wa_mild,
        "measured: wild {wa_wild:.3} <= mild {wa_mild:.3}"
    );
}
